//! The round engine, generic over the fusion algorithm and the detector.

use arsf_attack::model::{AttackMode, AttackStrategy, SlotContext};
use arsf_attack::{delta, AttackerConfig};
use arsf_detect::{Detector, RoundAssessment};
use arsf_fusion::{Fuser, FusionError, MarzulloFuser};
use arsf_interval::Interval;
use arsf_schedule::TransmissionOrder;
use arsf_sensor::{Measurement, SensorSuite};
use rand::Rng;

use crate::PipelineConfig;

/// Everything observable about one communication round.
///
/// Outcomes are reusable buffers: the engine's
/// [`FusionPipeline::run_round_into`] clears and refills an existing
/// outcome instead of allocating, which is what the batch runner and the
/// benchmarks use for sweep throughput.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// The ground truth the round was sampled at (simulation only).
    pub truth: f64,
    /// The transmission order used.
    pub order: TransmissionOrder,
    /// The broadcast intervals as `(sensor, interval)` in slot order
    /// (sensors silenced by faults are absent).
    pub transmitted: Vec<(usize, Interval<f64>)>,
    /// The fusion result; an error certifies that more sensors misbehaved
    /// than the fault assumption `f` allows.
    pub fusion: Result<Interval<f64>, FusionError>,
    /// Midpoint of the fusion interval (the controller's point estimate).
    pub estimate: Option<f64>,
    /// Sensors flagged by the detector this round.
    pub flagged: Vec<usize>,
    /// Sensors condemned by a temporal detector so far (empty for
    /// memoryless detectors).
    pub condemned: Vec<usize>,
}

impl Default for RoundOutcome {
    /// An empty outcome ready to be filled by
    /// [`FusionPipeline::run_round_into`].
    fn default() -> Self {
        Self {
            truth: 0.0,
            order: TransmissionOrder::identity(0),
            transmitted: Vec::new(),
            fusion: Err(FusionError::EmptyInput),
            estimate: None,
            flagged: Vec::new(),
            condemned: Vec::new(),
        }
    }
}

impl RoundOutcome {
    /// The fusion width, when fusion succeeded.
    pub fn width(&self) -> Option<f64> {
        self.fusion.as_ref().ok().map(|s| s.width())
    }
}

/// How a builder materialises its fuser when none was supplied: the
/// engine defaults to Marzullo with the configured fault assumption.
enum FuserSource<F> {
    FromConfig(fn(usize) -> F),
    Given(F),
}

/// Builder for [`FusionPipeline`].
///
/// The type parameter tracks the fusion algorithm; it starts at
/// [`MarzulloFuser`] and changes when [`PipelineBuilder::fuser`] installs
/// a different one.
pub struct PipelineBuilder<F: Fuser<f64> = MarzulloFuser> {
    suite: SensorSuite,
    config: PipelineConfig,
    attacker: Option<(AttackerConfig, Box<dyn AttackStrategy>)>,
    fuser: FuserSource<F>,
    detector: Option<Box<dyn Detector>>,
}

impl<F: Fuser<f64>> PipelineBuilder<F> {
    /// Sets the pipeline configuration (defaults to `f = 1`, Ascending,
    /// immediate detection).
    #[must_use]
    pub fn config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// Installs a fusion algorithm, replacing the default
    /// [`MarzulloFuser`] derived from the configured `f`. Any
    /// [`Fuser<f64>`] works, including boxed trait objects and stateful
    /// fusers.
    #[must_use]
    pub fn fuser<G: Fuser<f64>>(self, fuser: G) -> PipelineBuilder<G> {
        PipelineBuilder {
            suite: self.suite,
            config: self.config,
            attacker: self.attacker,
            fuser: FuserSource::Given(fuser),
            detector: self.detector,
        }
    }

    /// Installs a detector, replacing the default derived from
    /// [`DetectionMode`](crate::DetectionMode) in the configuration.
    #[must_use]
    pub fn detector(mut self, detector: Box<dyn Detector>) -> Self {
        self.detector = Some(detector);
        self
    }

    /// Installs an attacker.
    ///
    /// # Panics
    ///
    /// Panics if a compromised index is out of range for the suite.
    #[must_use]
    pub fn attacker(mut self, config: AttackerConfig, strategy: Box<dyn AttackStrategy>) -> Self {
        assert!(
            config.compromised().iter().all(|&i| i < self.suite.len()),
            "compromised sensor index out of range"
        );
        self.attacker = Some((config, strategy));
        self
    }

    /// Finalises the pipeline.
    pub fn build(self) -> FusionPipeline<F> {
        let n = self.suite.len();
        let fuser = match self.fuser {
            FuserSource::FromConfig(make) => make(self.config.f()),
            FuserSource::Given(fuser) => fuser,
        };
        let detector = self
            .detector
            .unwrap_or_else(|| self.config.detection().detector(n));
        let widths = self.suite.widths();
        FusionPipeline {
            suite: self.suite,
            config: self.config,
            attacker: self.attacker,
            fuser,
            detector,
            widths,
            readings: Vec::with_capacity(n),
            intervals: Vec::with_capacity(n),
            round: 0,
        }
    }
}

/// The round engine: sample → schedule → (attack) → fuse → detect.
///
/// Generic over the fusion algorithm `F` (any [`Fuser<f64>`], defaulting
/// to [`MarzulloFuser`]) and dynamically over the detector (any
/// [`Detector`]), so every algorithm in `arsf-fusion` and every detector
/// in `arsf-detect` runs through the same entry point.
///
/// This engine is also the closed-loop engines' engine: a
/// [`LandShark`](crate::closed_loop::landshark::LandShark) (and hence
/// every platoon vehicle) owns one pipeline built through the identical
/// fault-wiring and attacker machinery, so faults, any attack strategy
/// and any fuser behave the same whether a round is driven open-loop or
/// from inside the vehicle control loop.
///
/// See the [crate documentation](crate) for an end-to-end example.
pub struct FusionPipeline<F: Fuser<f64> = MarzulloFuser> {
    suite: SensorSuite,
    config: PipelineConfig,
    attacker: Option<(AttackerConfig, Box<dyn AttackStrategy>)>,
    fuser: F,
    detector: Box<dyn Detector>,
    /// Static per-sensor interval widths (schedule input), cached once.
    widths: Vec<f64>,
    /// Scratch: this round's measurements.
    readings: Vec<Measurement>,
    /// Scratch: this round's transmitted intervals, in slot order.
    intervals: Vec<Interval<f64>>,
    round: u64,
}

impl FusionPipeline<MarzulloFuser> {
    /// Starts building a pipeline around a sensor suite.
    pub fn builder(suite: SensorSuite) -> PipelineBuilder<MarzulloFuser> {
        PipelineBuilder {
            suite,
            config: PipelineConfig::new(1, arsf_schedule::SchedulePolicy::Ascending),
            attacker: None,
            fuser: FuserSource::FromConfig(MarzulloFuser::new),
            detector: None,
        }
    }
}

impl<F: Fuser<f64>> FusionPipeline<F> {
    /// The sensor suite.
    pub fn suite(&self) -> &SensorSuite {
        &self.suite
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The fusion algorithm.
    pub fn fuser(&self) -> &F {
        &self.fuser
    }

    /// The detector.
    pub fn detector(&self) -> &dyn Detector {
        &*self.detector
    }

    /// The number of completed rounds.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Resets the fuser's and detector's carried state and the round
    /// counter, returning the engine to its initial state (the suite's
    /// fault state is untouched).
    pub fn reset(&mut self) {
        self.fuser.reset();
        self.detector.reset();
        self.round = 0;
    }

    /// Installs, replaces or removes the attacker between rounds — the
    /// case study re-draws the compromised sensor every round, and a
    /// persistent engine (stateful fuser/detector, advancing schedules)
    /// must not be rebuilt to express that.
    ///
    /// # Panics
    ///
    /// Panics if a compromised index is out of range for the suite.
    pub fn set_attacker(&mut self, attacker: Option<(AttackerConfig, Box<dyn AttackStrategy>)>) {
        if let Some((cfg, _)) = &attacker {
            assert!(
                cfg.compromised().iter().all(|&i| i < self.suite.len()),
                "compromised sensor index out of range"
            );
        }
        self.attacker = attacker;
    }

    /// Replaces only the **configuration** of the installed attacker,
    /// keeping the boxed strategy (and any state it carries, such as
    /// [`PhantomOptimal`](arsf_attack::strategies::PhantomOptimal)'s
    /// side-alternation) alive — the allocation-free way to express a
    /// per-round compromised set in a hot control loop.
    ///
    /// # Panics
    ///
    /// Panics if no attacker is installed or a compromised index is out
    /// of range for the suite.
    pub fn set_attacker_config(&mut self, config: AttackerConfig) {
        assert!(
            config.compromised().iter().all(|&i| i < self.suite.len()),
            "compromised sensor index out of range"
        );
        let (cfg, _) = self
            .attacker
            .as_mut()
            .expect("set_attacker_config needs an installed attacker");
        *cfg = config;
    }

    /// Runs one communication round at the given ground truth.
    ///
    /// The round unfolds exactly as in the paper: every sensor samples,
    /// the schedule fixes the slot order, each slot broadcasts either the
    /// correct reading or — for compromised sensors — whatever the attack
    /// strategy forges from the frames already on the wire, and finally
    /// the controller fuses and runs detection.
    pub fn run_round<R: Rng + ?Sized>(&mut self, truth: f64, rng: &mut R) -> RoundOutcome {
        let mut out = RoundOutcome::default();
        self.run_round_into(truth, rng, &mut out);
        out
    }

    /// [`FusionPipeline::run_round`] writing into a reusable outcome
    /// buffer: all result vectors are cleared and refilled in place. An
    /// honest round performs no per-round allocation beyond the
    /// schedule's order; attacked rounds additionally build small
    /// per-slot context buffers for the strategy.
    pub fn run_round_into<R: Rng + ?Sized>(
        &mut self,
        truth: f64,
        rng: &mut R,
        out: &mut RoundOutcome,
    ) {
        self.run_round_at_into(truth, self.round, rng, out);
    }

    /// [`FusionPipeline::run_round`] with an explicit round counter —
    /// needed when the caller rebuilds pipelines between rounds (e.g. a
    /// per-round compromised set) but wants rotating schedules to keep
    /// advancing.
    pub fn run_round_at<R: Rng + ?Sized>(
        &mut self,
        truth: f64,
        round: u64,
        rng: &mut R,
    ) -> RoundOutcome {
        let mut out = RoundOutcome::default();
        self.run_round_at_into(truth, round, rng, &mut out);
        out
    }

    /// [`FusionPipeline::run_round_at`] writing into a reusable outcome
    /// buffer.
    pub fn run_round_at_into<R: Rng + ?Sized>(
        &mut self,
        truth: f64,
        round: u64,
        rng: &mut R,
        out: &mut RoundOutcome,
    ) {
        let order = self.config.schedule().order(&self.widths, round, rng);
        self.round = round + 1;

        // Sample every sensor (compromised sensors still produce their
        // *correct* readings, which the attacker reads before forging).
        self.suite.sample_all_into(truth, rng, &mut self.readings);
        let readings = &self.readings;
        let reading_of = |sensor: usize| {
            readings
                .iter()
                .find(|m| m.sensor.index() == sensor)
                .map(|m| m.interval)
        };

        // The attacker's Δ across her sensors' correct readings.
        let (attacker_cfg, attacker_delta) = match &self.attacker {
            Some((cfg, _)) => {
                let own: Vec<Interval<f64>> = cfg
                    .compromised()
                    .iter()
                    .filter_map(|&s| reading_of(s))
                    .collect();
                (Some(cfg.clone()), delta(&own))
            }
            None => (None, None),
        };

        let n = self.suite.len();
        let f = self.config.f();
        out.truth = truth;
        out.transmitted.clear();

        for slot in 0..order.len() {
            let sensor = order[slot];
            let Some(correct_reading) = reading_of(sensor) else {
                continue; // silenced by a fault this round
            };
            let is_compromised = attacker_cfg
                .as_ref()
                .is_some_and(|cfg| cfg.controls(sensor));
            let interval = if is_compromised {
                let cfg = attacker_cfg.as_ref().expect("checked above");
                let unsent_attacked = order
                    .as_slice()
                    .iter()
                    .skip(slot)
                    .filter(|&&s| cfg.controls(s))
                    .count();
                let future_own_widths: Vec<f64> = order
                    .as_slice()
                    .iter()
                    .skip(slot + 1)
                    .filter(|&&s| cfg.controls(s))
                    .map(|&s| self.widths[s])
                    .collect();
                let mode = AttackMode::for_slot(out.transmitted.len(), n, f, unsent_attacked);
                let ctx = SlotContext {
                    order: &order,
                    slot,
                    sensor,
                    width: self.widths[sensor],
                    seen: &out.transmitted,
                    delta: attacker_delta.unwrap_or(correct_reading),
                    own_correct: correct_reading,
                    mode,
                    n,
                    f,
                    future_own_widths: &future_own_widths,
                    compromised: cfg.compromised(),
                    all_widths: &self.widths,
                };
                let strategy = &mut self
                    .attacker
                    .as_mut()
                    .expect("attacker present on compromised slot")
                    .1;
                let forged = strategy.forge(&ctx);
                debug_assert!(
                    (forged.width() - self.widths[sensor]).abs() < 1e-9,
                    "strategies must preserve the public interval width"
                );
                forged
            } else {
                correct_reading
            };
            out.transmitted.push((sensor, interval));
        }
        out.order = order;

        // Fusion and detection, through the pluggable interfaces.
        self.intervals.clear();
        self.intervals
            .extend(out.transmitted.iter().map(|(_, iv)| *iv));
        out.fusion = self.fuser.fuse(&self.intervals);
        out.estimate = out.fusion.as_ref().ok().map(|s| s.midpoint());

        // Hand the outcome's vectors to the detector as an assessment so
        // findings land in place without allocating. The clear is
        // unconditional: a reused buffer must not carry a previous round's
        // flags/condemnations through a round whose fusion failed (the
        // detector only runs on fused rounds).
        let mut assessment = RoundAssessment {
            flagged: core::mem::take(&mut out.flagged),
            condemned: core::mem::take(&mut out.condemned),
        };
        assessment.clear();
        if let Ok(fused) = &out.fusion {
            self.detector
                .assess(&out.transmitted, fused, &mut assessment);
        }
        out.flagged = assessment.flagged;
        out.condemned = assessment.condemned;
    }
}

impl<F: Fuser<f64>> core::fmt::Debug for FusionPipeline<F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FusionPipeline")
            .field("sensors", &self.suite.len())
            .field("f", &self.config.f())
            .field("schedule", &self.config.schedule().name())
            .field("fuser", &self.fuser.name())
            .field("detector", &self.detector.name())
            .field(
                "attacker",
                &self
                    .attacker
                    .as_ref()
                    .map(|(c, s)| (c.compromised().to_vec(), s.name().to_string())),
            )
            .field("rounds", &self.round)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DetectionMode;
    use arsf_attack::strategies::{GreedyExtreme, PhantomOptimal, Side};
    use arsf_attack::Truthful;
    use arsf_detect::{ImmediateDetector, NoDetector};
    use arsf_fusion::{BrooksIyengarFuser, HullFuser, InverseVarianceFuser};
    use arsf_schedule::SchedulePolicy;
    use arsf_sensor::{FaultKind, FaultModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2014)
    }

    fn landshark_pipeline(
        policy: SchedulePolicy,
        attacked: &[usize],
        strategy: Box<dyn AttackStrategy>,
    ) -> FusionPipeline {
        FusionPipeline::builder(arsf_sensor::suite::landshark())
            .config(PipelineConfig::new(1, policy))
            .attacker(AttackerConfig::new(attacked.iter().copied(), 1), strategy)
            .build()
    }

    #[test]
    fn honest_round_contains_truth_with_tight_fusion() {
        let mut rng = rng();
        let mut p = FusionPipeline::builder(arsf_sensor::suite::landshark())
            .config(PipelineConfig::new(1, SchedulePolicy::Ascending))
            .build();
        for _ in 0..50 {
            let out = p.run_round(10.0, &mut rng);
            let fused = out.fusion.expect("all correct");
            assert!(fused.contains(10.0));
            assert!(out.flagged.is_empty());
            // f = 1 < ceil(4/3}? no: 1 < ceil(4/3) = 2, so the fusion is
            // bounded by some correct width (<= 2.0, the camera).
            assert!(fused.width() <= 2.0 + 1e-12);
        }
        assert_eq!(p.rounds(), 50);
    }

    #[test]
    fn attacked_round_stays_stealthy_and_contains_truth() {
        let mut rng = rng();
        for policy in [SchedulePolicy::Ascending, SchedulePolicy::Descending] {
            let mut p = landshark_pipeline(policy, &[0], Box::new(PhantomOptimal::new()));
            for _ in 0..50 {
                let out = p.run_round(10.0, &mut rng);
                let fused = out.fusion.expect("fa <= f always fuses");
                assert!(fused.contains(10.0), "fa <= f keeps truth inside");
                assert!(
                    out.flagged.is_empty(),
                    "phantom-optimal must remain stealthy; flagged {:?}",
                    out.flagged
                );
            }
        }
    }

    #[test]
    fn descending_gives_attacker_more_width_than_ascending() {
        let mut rng = rng();
        let mut asc = landshark_pipeline(
            SchedulePolicy::Ascending,
            &[0],
            Box::new(PhantomOptimal::new()),
        );
        let mut desc = landshark_pipeline(
            SchedulePolicy::Descending,
            &[0],
            Box::new(PhantomOptimal::new()),
        );
        let rounds = 300;
        let mut asc_total = 0.0;
        let mut desc_total = 0.0;
        for _ in 0..rounds {
            asc_total += asc.run_round(10.0, &mut rng).width().unwrap();
            desc_total += desc.run_round(10.0, &mut rng).width().unwrap();
        }
        assert!(
            desc_total > asc_total,
            "descending {desc_total} must exceed ascending {asc_total}"
        );
    }

    #[test]
    fn truthful_attacker_changes_nothing() {
        let mut rng_a = rng();
        let mut rng_b = rng();
        let mut honest = FusionPipeline::builder(arsf_sensor::suite::landshark())
            .config(PipelineConfig::new(1, SchedulePolicy::Ascending))
            .build();
        let mut nominal = landshark_pipeline(SchedulePolicy::Ascending, &[0], Box::new(Truthful));
        for _ in 0..20 {
            let a = honest.run_round(10.0, &mut rng_a);
            let b = nominal.run_round(10.0, &mut rng_b);
            assert_eq!(a.fusion, b.fusion);
        }
    }

    #[test]
    fn greedy_attacker_is_flagged_or_stealthy_but_width_preserving() {
        let mut rng = rng();
        let mut p = landshark_pipeline(
            SchedulePolicy::Descending,
            &[0],
            Box::new(GreedyExtreme::new(Side::High)),
        );
        for _ in 0..50 {
            let out = p.run_round(10.0, &mut rng);
            for (sensor, iv) in &out.transmitted {
                if *sensor == 0 {
                    assert!((iv.width() - 0.2).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn silent_fault_drops_a_sensor_from_the_round() {
        let mut rng = rng();
        let mut suite = arsf_sensor::suite::landshark();
        suite.sensors_mut()[3] = suite.sensors()[3]
            .clone()
            .with_fault(FaultModel::new(FaultKind::Silent, 1.0));
        let mut p = FusionPipeline::builder(suite)
            .config(PipelineConfig::new(1, SchedulePolicy::Ascending))
            .build();
        let out = p.run_round(10.0, &mut rng);
        assert_eq!(out.transmitted.len(), 3);
        assert!(out.fusion.is_ok());
    }

    #[test]
    fn biased_fault_is_flagged_by_immediate_detection() {
        let mut rng = rng();
        let mut suite = arsf_sensor::suite::landshark();
        // A camera stuck far away from the truth.
        suite.sensors_mut()[3] = suite.sensors()[3]
            .clone()
            .with_fault(FaultModel::new(FaultKind::Bias { offset: 50.0 }, 1.0));
        let mut p = FusionPipeline::builder(suite)
            .config(PipelineConfig::new(1, SchedulePolicy::Ascending))
            .build();
        let out = p.run_round(10.0, &mut rng);
        assert_eq!(out.flagged, vec![3]);
        // The fusion still contains the truth (one fault, f = 1).
        assert!(out.fusion.unwrap().contains(10.0));
    }

    #[test]
    fn windowed_detection_condemns_persistent_faults() {
        let mut rng = rng();
        let mut suite = arsf_sensor::suite::landshark();
        suite.sensors_mut()[2] = suite.sensors()[2]
            .clone()
            .with_fault(FaultModel::new(FaultKind::Bias { offset: 30.0 }, 1.0));
        let mut p = FusionPipeline::builder(suite)
            .config(
                PipelineConfig::new(1, SchedulePolicy::Ascending).with_detection(
                    DetectionMode::Windowed {
                        window: 5,
                        tolerance: 2,
                    },
                ),
            )
            .build();
        let mut condemned_at = None;
        for round in 0..10 {
            let out = p.run_round(10.0, &mut rng);
            if out.condemned.contains(&2) {
                condemned_at = Some(round);
                break;
            }
        }
        assert_eq!(
            condemned_at,
            Some(2),
            "condemned after tolerance+1 = 3 rounds"
        );
    }

    #[test]
    fn detection_off_never_flags() {
        let mut rng = rng();
        let mut suite = arsf_sensor::suite::landshark();
        suite.sensors_mut()[3] = suite.sensors()[3]
            .clone()
            .with_fault(FaultModel::new(FaultKind::Bias { offset: 50.0 }, 1.0));
        let mut p = FusionPipeline::builder(suite)
            .config(
                PipelineConfig::new(1, SchedulePolicy::Ascending)
                    .with_detection(DetectionMode::Off),
            )
            .build();
        let out = p.run_round(10.0, &mut rng);
        assert!(out.flagged.is_empty());
    }

    #[test]
    fn debug_format_is_informative() {
        let p = landshark_pipeline(
            SchedulePolicy::Ascending,
            &[0],
            Box::new(PhantomOptimal::new()),
        );
        let s = format!("{p:?}");
        assert!(s.contains("phantom-optimal"));
        assert!(s.contains("ascending"));
        assert!(s.contains("marzullo"));
        assert!(s.contains("immediate"));
    }

    #[test]
    fn any_fuser_drives_the_same_engine() {
        // The acceptance shape of the redesign: heterogeneous fusers run
        // through the identical entry point on identical rounds.
        let mut rng = rng();
        let mut hull = FusionPipeline::builder(arsf_sensor::suite::landshark())
            .config(PipelineConfig::new(1, SchedulePolicy::Ascending))
            .fuser(HullFuser)
            .build();
        let mut marzullo = FusionPipeline::builder(arsf_sensor::suite::landshark())
            .config(PipelineConfig::new(1, SchedulePolicy::Ascending))
            .build();
        let mut rng2 = self::rng();
        for _ in 0..20 {
            let h = hull.run_round(10.0, &mut rng);
            let m = marzullo.run_round(10.0, &mut rng2);
            // Same readings (same seed), so the hull contains Marzullo.
            assert!(h.fusion.unwrap().contains_interval(&m.fusion.unwrap()));
        }
        assert_eq!(Fuser::<f64>::name(hull.fuser()), "hull");
    }

    #[test]
    fn boxed_dyn_fuser_works_in_the_engine() {
        let mut rng = rng();
        let fusers: Vec<Box<dyn Fuser<f64>>> = vec![
            Box::new(MarzulloFuser::new(1)),
            Box::new(BrooksIyengarFuser::new(1)),
            Box::new(InverseVarianceFuser),
        ];
        for fuser in fusers {
            let mut p = FusionPipeline::builder(arsf_sensor::suite::landshark())
                .config(PipelineConfig::new(1, SchedulePolicy::Ascending))
                .fuser(fuser)
                .build();
            let out = p.run_round(10.0, &mut rng);
            assert!(out.fusion.is_ok(), "{} failed", p.fuser().name());
        }
    }

    #[test]
    fn custom_detector_overrides_the_config() {
        let mut rng = rng();
        let mut suite = arsf_sensor::suite::landshark();
        suite.sensors_mut()[3] = suite.sensors()[3]
            .clone()
            .with_fault(FaultModel::new(FaultKind::Bias { offset: 50.0 }, 1.0));
        // Config says Immediate, but the explicit NoDetector wins.
        let mut p = FusionPipeline::builder(suite)
            .config(PipelineConfig::new(1, SchedulePolicy::Ascending))
            .detector(Box::new(NoDetector))
            .build();
        let out = p.run_round(10.0, &mut rng);
        assert!(out.flagged.is_empty());
        assert_eq!(p.detector().name(), "off");
    }

    #[test]
    fn run_round_into_reuses_buffers_and_matches_run_round() {
        let mut rng_a = rng();
        let mut rng_b = rng();
        let mut a = landshark_pipeline(
            SchedulePolicy::Descending,
            &[0],
            Box::new(PhantomOptimal::new()),
        );
        let mut b = landshark_pipeline(
            SchedulePolicy::Descending,
            &[0],
            Box::new(PhantomOptimal::new()),
        );
        let mut reused = RoundOutcome::default();
        for round in 0..30 {
            let fresh = a.run_round(10.0, &mut rng_a);
            b.run_round_into(10.0, &mut rng_b, &mut reused);
            assert_eq!(fresh.fusion, reused.fusion, "round {round}");
            assert_eq!(fresh.transmitted, reused.transmitted);
            assert_eq!(fresh.flagged, reused.flagged);
            assert_eq!(fresh.condemned, reused.condemned);
            assert_eq!(fresh.order, reused.order);
            assert_eq!(fresh.estimate, reused.estimate);
        }
    }

    #[test]
    fn explicit_detector_with_immediate_semantics_matches_default() {
        let mut rng_a = rng();
        let mut rng_b = rng();
        let mut default = FusionPipeline::builder(arsf_sensor::suite::landshark())
            .config(PipelineConfig::new(1, SchedulePolicy::Ascending))
            .build();
        let mut explicit = FusionPipeline::builder(arsf_sensor::suite::landshark())
            .config(PipelineConfig::new(1, SchedulePolicy::Ascending))
            .fuser(MarzulloFuser::new(1))
            .detector(Box::new(ImmediateDetector))
            .build();
        for _ in 0..20 {
            let a = default.run_round(10.0, &mut rng_a);
            let b = explicit.run_round(10.0, &mut rng_b);
            assert_eq!(a.fusion, b.fusion);
            assert_eq!(a.flagged, b.flagged);
        }
    }

    #[test]
    fn reset_clears_fuser_detector_and_round_state() {
        let mut rng = rng();
        let mut suite = arsf_sensor::suite::landshark();
        suite.sensors_mut()[2] = suite.sensors()[2]
            .clone()
            .with_fault(FaultModel::new(FaultKind::Bias { offset: 30.0 }, 1.0));
        let mut p = FusionPipeline::builder(suite)
            .config(
                PipelineConfig::new(1, SchedulePolicy::Ascending).with_detection(
                    DetectionMode::Windowed {
                        window: 5,
                        tolerance: 0,
                    },
                ),
            )
            .build();
        let out = p.run_round(10.0, &mut rng);
        assert_eq!(out.condemned, vec![2]);
        p.reset();
        assert_eq!(p.rounds(), 0);
        // A healthy suite view: the condemned state was wiped, so the
        // first post-reset round reports no standing condemnations beyond
        // the fresh violation.
        let out = p.run_round(10.0, &mut rng);
        assert_eq!(out.condemned, vec![2], "re-condemned from fresh state");
    }
}
