//! The round engine.

use arsf_attack::model::{AttackMode, AttackStrategy, SlotContext};
use arsf_attack::{delta, AttackerConfig};
use arsf_detect::{OverlapDetector, WindowVerdict, WindowedDetector};
use arsf_fusion::{marzullo, FusionError};
use arsf_interval::Interval;
use arsf_schedule::TransmissionOrder;
use arsf_sensor::SensorSuite;
use rand::Rng;

use crate::{DetectionMode, PipelineConfig};

/// Everything observable about one communication round.
#[derive(Debug)]
pub struct RoundOutcome {
    /// The ground truth the round was sampled at (simulation only).
    pub truth: f64,
    /// The transmission order used.
    pub order: TransmissionOrder,
    /// The broadcast intervals as `(sensor, interval)` in slot order
    /// (sensors silenced by faults are absent).
    pub transmitted: Vec<(usize, Interval<f64>)>,
    /// The fusion result; an error certifies that more sensors misbehaved
    /// than the fault assumption `f` allows.
    pub fusion: Result<Interval<f64>, FusionError>,
    /// Midpoint of the fusion interval (the controller's point estimate).
    pub estimate: Option<f64>,
    /// Sensors flagged by immediate overlap detection this round.
    pub flagged: Vec<usize>,
    /// Sensors condemned by the windowed detector so far (empty unless
    /// [`DetectionMode::Windowed`]).
    pub condemned: Vec<usize>,
}

impl RoundOutcome {
    /// The fusion width, when fusion succeeded.
    pub fn width(&self) -> Option<f64> {
        self.fusion.as_ref().ok().map(|s| s.width())
    }
}

/// Builder for [`FusionPipeline`].
pub struct PipelineBuilder {
    suite: SensorSuite,
    config: PipelineConfig,
    attacker: Option<(AttackerConfig, Box<dyn AttackStrategy>)>,
}

impl PipelineBuilder {
    /// Sets the pipeline configuration (defaults to `f = 1`, Ascending,
    /// immediate detection).
    #[must_use]
    pub fn config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// Installs an attacker.
    ///
    /// # Panics
    ///
    /// Panics if a compromised index is out of range for the suite.
    #[must_use]
    pub fn attacker(
        mut self,
        config: AttackerConfig,
        strategy: Box<dyn AttackStrategy>,
    ) -> Self {
        assert!(
            config.compromised().iter().all(|&i| i < self.suite.len()),
            "compromised sensor index out of range"
        );
        self.attacker = Some((config, strategy));
        self
    }

    /// Finalises the pipeline.
    pub fn build(self) -> FusionPipeline {
        let n = self.suite.len();
        let windowed = match self.config.detection() {
            DetectionMode::Windowed { window, tolerance } => {
                Some(WindowedDetector::new(n, window, tolerance))
            }
            _ => None,
        };
        FusionPipeline {
            suite: self.suite,
            config: self.config,
            attacker: self.attacker,
            windowed,
            round: 0,
        }
    }
}

/// The round engine: sample → schedule → (attack) → fuse → detect.
///
/// See the [crate documentation](crate) for an end-to-end example.
pub struct FusionPipeline {
    suite: SensorSuite,
    config: PipelineConfig,
    attacker: Option<(AttackerConfig, Box<dyn AttackStrategy>)>,
    windowed: Option<WindowedDetector>,
    round: u64,
}

impl FusionPipeline {
    /// Starts building a pipeline around a sensor suite.
    pub fn builder(suite: SensorSuite) -> PipelineBuilder {
        PipelineBuilder {
            suite,
            config: PipelineConfig::new(1, arsf_schedule::SchedulePolicy::Ascending),
            attacker: None,
        }
    }

    /// The sensor suite.
    pub fn suite(&self) -> &SensorSuite {
        &self.suite
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The number of completed rounds.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Runs one communication round at the given ground truth.
    ///
    /// The round unfolds exactly as in the paper: every sensor samples,
    /// the schedule fixes the slot order, each slot broadcasts either the
    /// correct reading or — for compromised sensors — whatever the attack
    /// strategy forges from the frames already on the wire, and finally
    /// the controller fuses and runs detection.
    pub fn run_round<R: Rng + ?Sized>(&mut self, truth: f64, rng: &mut R) -> RoundOutcome {
        self.run_round_at(truth, self.round, rng)
    }

    /// [`FusionPipeline::run_round`] with an explicit round counter —
    /// needed when the caller rebuilds pipelines between rounds (e.g. a
    /// per-round compromised set) but wants rotating schedules to keep
    /// advancing.
    pub fn run_round_at<R: Rng + ?Sized>(
        &mut self,
        truth: f64,
        round: u64,
        rng: &mut R,
    ) -> RoundOutcome {
        let widths = self.suite.widths();
        let order = self.config.schedule().order(&widths, round, rng);
        self.round = round + 1;

        // Sample every sensor (compromised sensors still produce their
        // *correct* readings, which the attacker reads before forging).
        let readings = self.suite.sample_all(truth, rng);
        let reading_of = |sensor: usize| {
            readings
                .iter()
                .find(|m| m.sensor.index() == sensor)
                .map(|m| m.interval)
        };

        // The attacker's Δ across her sensors' correct readings.
        let (attacker_cfg, attacker_delta) = match &self.attacker {
            Some((cfg, _)) => {
                let own: Vec<Interval<f64>> = cfg
                    .compromised()
                    .iter()
                    .filter_map(|&s| reading_of(s))
                    .collect();
                (Some(cfg.clone()), delta(&own))
            }
            None => (None, None),
        };

        let n = self.suite.len();
        let f = self.config.f();
        let mut transmitted: Vec<(usize, Interval<f64>)> = Vec::with_capacity(n);

        for slot in 0..order.len() {
            let sensor = order[slot];
            let Some(correct_reading) = reading_of(sensor) else {
                continue; // silenced by a fault this round
            };
            let is_compromised = attacker_cfg
                .as_ref()
                .is_some_and(|cfg| cfg.controls(sensor));
            let interval = if is_compromised {
                let cfg = attacker_cfg.as_ref().expect("checked above");
                let unsent_attacked = order
                    .as_slice()
                    .iter()
                    .skip(slot)
                    .filter(|&&s| cfg.controls(s))
                    .count();
                let future_own_widths: Vec<f64> = order
                    .as_slice()
                    .iter()
                    .skip(slot + 1)
                    .filter(|&&s| cfg.controls(s))
                    .map(|&s| widths[s])
                    .collect();
                let mode =
                    AttackMode::for_slot(transmitted.len(), n, f, unsent_attacked);
                let ctx = SlotContext {
                    order: &order,
                    slot,
                    sensor,
                    width: widths[sensor],
                    seen: &transmitted,
                    delta: attacker_delta.unwrap_or(correct_reading),
                    own_correct: correct_reading,
                    mode,
                    n,
                    f,
                    future_own_widths: &future_own_widths,
                    compromised: cfg.compromised(),
                    all_widths: &widths,
                };
                let strategy = &mut self
                    .attacker
                    .as_mut()
                    .expect("attacker present on compromised slot")
                    .1;
                let forged = strategy.forge(&ctx);
                debug_assert!(
                    (forged.width() - widths[sensor]).abs() < 1e-9,
                    "strategies must preserve the public interval width"
                );
                forged
            } else {
                correct_reading
            };
            transmitted.push((sensor, interval));
        }

        // Fusion and detection.
        let intervals: Vec<Interval<f64>> = transmitted.iter().map(|(_, iv)| *iv).collect();
        let fusion = marzullo::fuse(&intervals, f.min(intervals.len().saturating_sub(1)));
        let estimate = fusion.as_ref().ok().map(|s| s.midpoint());

        let mut flagged = Vec::new();
        let mut condemned = Vec::new();
        if let Ok(fused) = &fusion {
            if self.config.detection() != DetectionMode::Off {
                let report = OverlapDetector.detect(&intervals, fused);
                flagged = report
                    .flagged
                    .iter()
                    .map(|&i| transmitted[i].0)
                    .collect();
            }
            if let Some(window) = &mut self.windowed {
                for (sensor, _) in &transmitted {
                    let violated = flagged.contains(sensor);
                    if window.record(*sensor, violated) == WindowVerdict::Condemned {
                        // recorded; the full list is read below
                    }
                }
                condemned = window.condemned();
            }
        }

        RoundOutcome {
            truth,
            order,
            transmitted,
            fusion,
            estimate,
            flagged,
            condemned,
        }
    }
}

impl core::fmt::Debug for FusionPipeline {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FusionPipeline")
            .field("sensors", &self.suite.len())
            .field("f", &self.config.f())
            .field("schedule", &self.config.schedule().name())
            .field("attacker", &self.attacker.as_ref().map(|(c, s)| {
                (c.compromised().to_vec(), s.name().to_string())
            }))
            .field("rounds", &self.round)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arsf_attack::strategies::{GreedyExtreme, PhantomOptimal, Side};
    use arsf_attack::Truthful;
    use arsf_schedule::SchedulePolicy;
    use arsf_sensor::{FaultKind, FaultModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2014)
    }

    fn landshark_pipeline(
        policy: SchedulePolicy,
        attacked: &[usize],
        strategy: Box<dyn AttackStrategy>,
    ) -> FusionPipeline {
        FusionPipeline::builder(arsf_sensor::suite::landshark())
            .config(PipelineConfig::new(1, policy))
            .attacker(AttackerConfig::new(attacked.iter().copied(), 1), strategy)
            .build()
    }

    #[test]
    fn honest_round_contains_truth_with_tight_fusion() {
        let mut rng = rng();
        let mut p = FusionPipeline::builder(arsf_sensor::suite::landshark())
            .config(PipelineConfig::new(1, SchedulePolicy::Ascending))
            .build();
        for _ in 0..50 {
            let out = p.run_round(10.0, &mut rng);
            let fused = out.fusion.expect("all correct");
            assert!(fused.contains(10.0));
            assert!(out.flagged.is_empty());
            // f = 1 < ceil(4/3}? no: 1 < ceil(4/3) = 2, so the fusion is
            // bounded by some correct width (<= 2.0, the camera).
            assert!(fused.width() <= 2.0 + 1e-12);
        }
        assert_eq!(p.rounds(), 50);
    }

    #[test]
    fn attacked_round_stays_stealthy_and_contains_truth() {
        let mut rng = rng();
        for policy in [SchedulePolicy::Ascending, SchedulePolicy::Descending] {
            let mut p = landshark_pipeline(policy, &[0], Box::new(PhantomOptimal::new()));
            for _ in 0..50 {
                let out = p.run_round(10.0, &mut rng);
                let fused = out.fusion.expect("fa <= f always fuses");
                assert!(fused.contains(10.0), "fa <= f keeps truth inside");
                assert!(
                    out.flagged.is_empty(),
                    "phantom-optimal must remain stealthy; flagged {:?}",
                    out.flagged
                );
            }
        }
    }

    #[test]
    fn descending_gives_attacker_more_width_than_ascending() {
        let mut rng = rng();
        let mut asc = landshark_pipeline(
            SchedulePolicy::Ascending,
            &[0],
            Box::new(PhantomOptimal::new()),
        );
        let mut desc = landshark_pipeline(
            SchedulePolicy::Descending,
            &[0],
            Box::new(PhantomOptimal::new()),
        );
        let rounds = 300;
        let mut asc_total = 0.0;
        let mut desc_total = 0.0;
        for _ in 0..rounds {
            asc_total += asc.run_round(10.0, &mut rng).width().unwrap();
            desc_total += desc.run_round(10.0, &mut rng).width().unwrap();
        }
        assert!(
            desc_total > asc_total,
            "descending {desc_total} must exceed ascending {asc_total}"
        );
    }

    #[test]
    fn truthful_attacker_changes_nothing() {
        let mut rng_a = rng();
        let mut rng_b = rng();
        let mut honest = FusionPipeline::builder(arsf_sensor::suite::landshark())
            .config(PipelineConfig::new(1, SchedulePolicy::Ascending))
            .build();
        let mut nominal = landshark_pipeline(
            SchedulePolicy::Ascending,
            &[0],
            Box::new(Truthful),
        );
        for _ in 0..20 {
            let a = honest.run_round(10.0, &mut rng_a);
            let b = nominal.run_round(10.0, &mut rng_b);
            assert_eq!(a.fusion, b.fusion);
        }
    }

    #[test]
    fn greedy_attacker_is_flagged_or_stealthy_but_width_preserving() {
        let mut rng = rng();
        let mut p = landshark_pipeline(
            SchedulePolicy::Descending,
            &[0],
            Box::new(GreedyExtreme::new(Side::High)),
        );
        for _ in 0..50 {
            let out = p.run_round(10.0, &mut rng);
            for (sensor, iv) in &out.transmitted {
                if *sensor == 0 {
                    assert!((iv.width() - 0.2).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn silent_fault_drops_a_sensor_from_the_round() {
        let mut rng = rng();
        let mut suite = arsf_sensor::suite::landshark();
        suite.sensors_mut()[3] = suite.sensors()[3]
            .clone()
            .with_fault(FaultModel::new(FaultKind::Silent, 1.0));
        let mut p = FusionPipeline::builder(suite)
            .config(PipelineConfig::new(1, SchedulePolicy::Ascending))
            .build();
        let out = p.run_round(10.0, &mut rng);
        assert_eq!(out.transmitted.len(), 3);
        assert!(out.fusion.is_ok());
    }

    #[test]
    fn biased_fault_is_flagged_by_immediate_detection() {
        let mut rng = rng();
        let mut suite = arsf_sensor::suite::landshark();
        // A camera stuck far away from the truth.
        suite.sensors_mut()[3] = suite.sensors()[3]
            .clone()
            .with_fault(FaultModel::new(FaultKind::Bias { offset: 50.0 }, 1.0));
        let mut p = FusionPipeline::builder(suite)
            .config(PipelineConfig::new(1, SchedulePolicy::Ascending))
            .build();
        let out = p.run_round(10.0, &mut rng);
        assert_eq!(out.flagged, vec![3]);
        // The fusion still contains the truth (one fault, f = 1).
        assert!(out.fusion.unwrap().contains(10.0));
    }

    #[test]
    fn windowed_detection_condemns_persistent_faults() {
        let mut rng = rng();
        let mut suite = arsf_sensor::suite::landshark();
        suite.sensors_mut()[2] = suite.sensors()[2]
            .clone()
            .with_fault(FaultModel::new(FaultKind::Bias { offset: 30.0 }, 1.0));
        let mut p = FusionPipeline::builder(suite)
            .config(
                PipelineConfig::new(1, SchedulePolicy::Ascending).with_detection(
                    DetectionMode::Windowed {
                        window: 5,
                        tolerance: 2,
                    },
                ),
            )
            .build();
        let mut condemned_at = None;
        for round in 0..10 {
            let out = p.run_round(10.0, &mut rng);
            if out.condemned.contains(&2) {
                condemned_at = Some(round);
                break;
            }
        }
        assert_eq!(condemned_at, Some(2), "condemned after tolerance+1 = 3 rounds");
    }

    #[test]
    fn detection_off_never_flags() {
        let mut rng = rng();
        let mut suite = arsf_sensor::suite::landshark();
        suite.sensors_mut()[3] = suite.sensors()[3]
            .clone()
            .with_fault(FaultModel::new(FaultKind::Bias { offset: 50.0 }, 1.0));
        let mut p = FusionPipeline::builder(suite)
            .config(
                PipelineConfig::new(1, SchedulePolicy::Ascending)
                    .with_detection(DetectionMode::Off),
            )
            .build();
        let out = p.run_round(10.0, &mut rng);
        assert!(out.flagged.is_empty());
    }

    #[test]
    fn debug_format_is_informative() {
        let p = landshark_pipeline(
            SchedulePolicy::Ascending,
            &[0],
            Box::new(PhantomOptimal::new()),
        );
        let s = format!("{p:?}");
        assert!(s.contains("phantom-optimal"));
        assert!(s.contains("ascending"));
    }
}
