//! Batch execution of declarative scenarios.
//!
//! [`ScenarioRunner`] materialises a [`Scenario`] into the generic
//! engine and drives it round by round, either streaming
//! ([`ScenarioRunner::step_into`]) or in batches into preallocated,
//! reusable [`RoundOutcome`] buffers ([`ScenarioRunner::run_batch`]) —
//! the shape the benchmarks use for allocation-free sweeps. A
//! [`BatchSummary`] aggregates the statistics the experiment harnesses
//! report.

use arsf_attack::AttackerConfig;
use arsf_fusion::Fuser;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::closed_loop::landshark::LandShark;
use crate::closed_loop::platoon::Platoon;
use crate::closed_loop::supervisor::SupervisorAction;
use crate::metrics::{SupervisorSummary, VehicleSummary, WidthStats};
use crate::scenario::{AttackerSpec, PlatoonSpec, Scenario, ScenarioError};
use crate::{FusionPipeline, RoundOutcome};

/// Aggregated results of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSummary {
    /// The scenario's name.
    pub scenario: String,
    /// The fuser that ran (report name).
    pub fuser: String,
    /// The detector that ran (report name).
    pub detector: String,
    /// Rounds executed. Closed-loop platoon runs count control periods
    /// (not vehicle-rounds); the fusion-quality statistics then describe
    /// the **leader**, while [`BatchSummary::supervisor`] pools every
    /// vehicle.
    pub rounds: u64,
    /// Width statistics over rounds whose fusion succeeded.
    pub widths: WidthStats,
    /// Rounds whose fused interval did **not** contain the ground truth.
    pub truth_lost: u64,
    /// Rounds where fusion failed outright.
    pub fusion_failures: u64,
    /// Rounds where the detector flagged at least one sensor.
    pub flagged_rounds: u64,
    /// Sensors condemned as of the last round whose fusion succeeded
    /// (ascending ids) — detection only runs on fused rounds.
    pub condemned: Vec<usize>,
    /// Safety-supervisor statistics, cumulative over the runner's
    /// lifetime; `None` for open-loop runs.
    pub supervisor: Option<SupervisorSummary>,
    /// Per-vehicle fusion statistics (leader first), cumulative over the
    /// runner's lifetime; empty except for closed-loop **platoon** runs,
    /// where every vehicle's engine outcome feeds its own aggregate.
    pub vehicles: Vec<VehicleSummary>,
}

impl BatchSummary {
    fn new(scenario: &Scenario, fuser: &str, detector: &str) -> Self {
        Self {
            scenario: scenario.name.clone(),
            fuser: fuser.to_string(),
            detector: detector.to_string(),
            rounds: 0,
            widths: WidthStats::new(),
            truth_lost: 0,
            fusion_failures: 0,
            flagged_rounds: 0,
            condemned: Vec::new(),
            supervisor: None,
            vehicles: Vec::new(),
        }
    }

    fn record(&mut self, out: &RoundOutcome) {
        self.rounds += 1;
        match &out.fusion {
            Ok(fused) => {
                self.widths.record(fused.width());
                if !fused.contains(out.truth) {
                    self.truth_lost += 1;
                }
                // Detection only runs on fused rounds, so only they carry
                // an up-to-date condemned set; a failed round must not
                // erase standing condemnations held by the detector.
                self.condemned.clear();
                self.condemned.extend_from_slice(&out.condemned);
                if !out.flagged.is_empty() {
                    self.flagged_rounds += 1;
                }
            }
            Err(_) => self.fusion_failures += 1,
        }
    }

    /// Fraction of fused rounds that lost the truth (0 when no round
    /// fused).
    pub fn truth_loss_rate(&self) -> f64 {
        let fused = self.rounds - self.fusion_failures;
        if fused == 0 {
            0.0
        } else {
            self.truth_lost as f64 / fused as f64
        }
    }
}

/// Executes one [`Scenario`] through the generic engine.
///
/// The runner owns the materialised pipeline (boxed fuser + detector)
/// and the scenario's deterministic RNG; two runners built from equal
/// scenarios produce identical outcome streams.
///
/// # Example
///
/// ```
/// use arsf_core::scenario::{self, Scenario, SuiteSpec};
/// use arsf_core::{RoundOutcome, ScenarioRunner};
///
/// let scenario = scenario::find("landshark-honest").expect("preset");
/// let mut runner = ScenarioRunner::new(&scenario);
/// // Reusable buffers: allocate once, sweep as many batches as needed.
/// let mut outcomes: Vec<RoundOutcome> = Vec::new();
/// let summary = runner.run_batch(100, &mut outcomes);
/// assert_eq!(outcomes.len(), 100);
/// assert_eq!(summary.fusion_failures, 0);
/// assert_eq!(summary.truth_lost, 0, "honest rounds keep the truth");
/// ```
#[derive(Debug)]
pub struct ScenarioRunner {
    scenario: Scenario,
    engine: Engine,
    rng: StdRng,
    round: u64,
    preemptions: u64,
}

/// The materialised execution engine behind one runner: open-loop fusion
/// rounds, a single closed-loop vehicle, or a closed-loop platoon.
#[derive(Debug)]
enum Engine {
    Open(Box<FusionPipeline<Box<dyn Fuser<f64>>>>),
    Shark(Box<LandShark>),
    Platoon(Box<Platoon>),
}

fn build_engine(scenario: &Scenario) -> Engine {
    match &scenario.closed_loop {
        None => Engine::Open(Box::new(scenario.build_pipeline())),
        Some(spec) => {
            let config = scenario.landshark_config();
            match spec.platoon {
                None => Engine::Shark(Box::new(LandShark::new(config))),
                Some(PlatoonSpec { size, gap_miles }) => {
                    Engine::Platoon(Box::new(Platoon::new(size, gap_miles, config)))
                }
            }
        }
    }
}

impl ScenarioRunner {
    /// Materialises a scenario (cloned) into a runnable engine: an
    /// open-loop [`FusionPipeline`], or — for closed-loop scenarios — a
    /// [`LandShark`] / [`Platoon`] driven through the vehicle control
    /// loop.
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails [`Scenario::validate`] (an
    /// out-of-range fault/compromised index, a non-LandShark closed-loop
    /// suite, or a degenerate platoon). Use [`ScenarioRunner::try_new`]
    /// for the typed error instead.
    pub fn new(scenario: &Scenario) -> Self {
        Self::try_new(scenario)
            .unwrap_or_else(|e| panic!("invalid scenario `{}`: {e}", scenario.name))
    }

    /// Fallible [`ScenarioRunner::new`]: validates the scenario first and
    /// returns the typed [`ScenarioError`] instead of panicking, so sweep
    /// harnesses can reject impossible cells gracefully.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScenarioError`] [`Scenario::validate`] finds.
    pub fn try_new(scenario: &Scenario) -> Result<Self, ScenarioError> {
        scenario.validate()?;
        Ok(Self {
            scenario: scenario.clone(),
            engine: build_engine(scenario),
            rng: StdRng::seed_from_u64(scenario.seed),
            round: 0,
            preemptions: 0,
        })
    }

    /// The scenario being executed.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Runs one round into a reusable outcome buffer.
    ///
    /// Closed-loop engines fill the buffer with the vehicle's (for
    /// platoons: the **leader's**) fusion round; the ground truth is the
    /// vehicle's actual speed.
    pub fn step_into(&mut self, out: &mut RoundOutcome) {
        match &mut self.engine {
            Engine::Open(pipeline) => {
                if self.scenario.attacker == AttackerSpec::RandomEachRound {
                    let sensor = self.rng.gen_range(0..pipeline.suite().len());
                    pipeline.set_attacker_config(AttackerConfig::new([sensor], self.scenario.f));
                }
                let truth = self.scenario.truth.at(self.round);
                pipeline.run_round_into(truth, &mut self.rng, out);
            }
            Engine::Shark(shark) => {
                let record = shark.step_with(&mut self.rng, out);
                if record.action != SupervisorAction::Nominal {
                    self.preemptions += 1;
                }
            }
            Engine::Platoon(platoon) => {
                let records = platoon.step_with(&mut self.rng, out);
                self.preemptions += records
                    .iter()
                    .filter(|r| r.action != SupervisorAction::Nominal)
                    .count() as u64;
            }
        }
        self.round += 1;
    }

    /// Runs `rounds` rounds into preallocated, reusable outcome buffers.
    ///
    /// `outcomes` is resized to `rounds` (existing buffers are reused in
    /// place; missing ones are default-constructed once) and every entry
    /// is overwritten. Returns the batch's aggregated summary. Repeated
    /// calls continue the scenario where the previous batch stopped.
    pub fn run_batch(&mut self, rounds: usize, outcomes: &mut Vec<RoundOutcome>) -> BatchSummary {
        outcomes.resize_with(rounds, RoundOutcome::default);
        let mut summary = self.summary_shell();
        for out in outcomes.iter_mut() {
            self.step_into(out);
            summary.record(out);
        }
        self.attach_supervisor(&mut summary);
        summary
    }

    /// Runs the scenario's configured round count, aggregating without
    /// retaining per-round outcomes (one reused buffer).
    pub fn run(&mut self) -> BatchSummary {
        self.run_into(&mut RoundOutcome::default())
    }

    /// [`ScenarioRunner::run`] stepping through a caller-owned reusable
    /// outcome buffer — the allocation-free shape sweep workers use when
    /// executing many scenarios back to back.
    pub fn run_into(&mut self, out: &mut RoundOutcome) -> BatchSummary {
        let mut summary = self.summary_shell();
        for _ in 0..self.scenario.rounds {
            self.step_into(out);
            summary.record(out);
        }
        self.attach_supervisor(&mut summary);
        summary
    }

    /// Restarts the run: engine state, round counter and RNG return to
    /// the scenario's initial state.
    ///
    /// The engine is rebuilt from the scenario rather than reset in
    /// place: `FusionPipeline::reset` cannot reach state carried inside a
    /// boxed attack strategy (e.g. `PhantomOptimal`'s side-alternation),
    /// and a closed-loop vehicle restarts mid-mission at the target
    /// speed — rebuilding reproduces exactly what `ScenarioRunner::new`
    /// constructed.
    pub fn reset(&mut self) {
        self.engine = build_engine(&self.scenario);
        self.rng = StdRng::seed_from_u64(self.scenario.seed);
        self.round = 0;
        self.preemptions = 0;
    }

    fn summary_shell(&self) -> BatchSummary {
        let pipeline: &FusionPipeline<Box<dyn Fuser<f64>>> = match &self.engine {
            Engine::Open(pipeline) => pipeline,
            Engine::Shark(shark) => shark.pipeline(),
            Engine::Platoon(platoon) => platoon.sharks()[0].pipeline(),
        };
        BatchSummary::new(
            &self.scenario,
            pipeline.fuser().name(),
            pipeline.detector().name(),
        )
    }

    /// Fills the summary's supervisor and per-vehicle columns from the
    /// closed-loop engine's cumulative statistics (no-op for open-loop
    /// runs).
    fn attach_supervisor(&self, summary: &mut BatchSummary) {
        if let Engine::Platoon(platoon) = &self.engine {
            summary.vehicles = platoon.vehicle_stats().to_vec();
        }
        summary.supervisor = match &self.engine {
            Engine::Open(_) => None,
            Engine::Shark(shark) => Some(SupervisorSummary {
                above_rate: shark.supervisor().upper_rate(),
                below_rate: shark.supervisor().lower_rate(),
                preemptions: self.preemptions,
                min_gap: None,
            }),
            Engine::Platoon(platoon) => {
                let (mut above, mut below, mut rounds) = (0u64, 0u64, 0u64);
                for shark in platoon.sharks() {
                    above += shark.supervisor().upper_violations();
                    below += shark.supervisor().lower_violations();
                    rounds += shark.supervisor().rounds();
                }
                let rate = |hits: u64| {
                    if rounds == 0 {
                        0.0
                    } else {
                        hits as f64 / rounds as f64
                    }
                };
                Some(SupervisorSummary {
                    above_rate: rate(above),
                    below_rate: rate(below),
                    preemptions: self.preemptions,
                    min_gap: Some(platoon.min_gap()),
                })
            }
        };
    }
}

/// Runs every scenario to completion and returns their summaries — the
/// one-call entry point for cross-algorithm comparison sweeps.
pub fn run_all(scenarios: &[Scenario]) -> Vec<BatchSummary> {
    scenarios
        .iter()
        .map(|s| ScenarioRunner::new(s).run())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{self, AttackerSpec, FuserSpec, StrategySpec, SuiteSpec};
    use crate::DetectionMode;
    use arsf_schedule::SchedulePolicy;

    fn quick(name: &str) -> Scenario {
        Scenario::new(name, SuiteSpec::Landshark).with_rounds(200)
    }

    #[test]
    fn equal_scenarios_produce_identical_streams() {
        let scenario = quick("det").with_attacker(AttackerSpec::Fixed {
            sensors: vec![0],
            strategy: StrategySpec::PhantomOptimal,
        });
        let mut a = ScenarioRunner::new(&scenario);
        let mut b = ScenarioRunner::new(&scenario);
        let mut out_a = RoundOutcome::default();
        let mut out_b = RoundOutcome::default();
        for _ in 0..50 {
            a.step_into(&mut out_a);
            b.step_into(&mut out_b);
            assert_eq!(out_a.fusion, out_b.fusion);
            assert_eq!(out_a.transmitted, out_b.transmitted);
        }
    }

    #[test]
    fn run_batch_reuses_and_resizes_buffers() {
        let mut runner = ScenarioRunner::new(&quick("batch"));
        let mut outcomes = Vec::new();
        let s1 = runner.run_batch(64, &mut outcomes);
        assert_eq!(outcomes.len(), 64);
        assert_eq!(s1.rounds, 64);
        // Shrinking and growing both reuse what is there.
        let s2 = runner.run_batch(16, &mut outcomes);
        assert_eq!(outcomes.len(), 16);
        assert_eq!(s2.rounds, 16);
        assert_eq!(runner.rounds(), 80, "batches continue the run");
        for out in &outcomes {
            assert!(out.fusion.is_ok());
        }
    }

    #[test]
    fn reset_restores_attacker_strategy_state() {
        // Regression: reset() used to call only FusionPipeline::reset,
        // which cannot reach state carried inside the boxed strategy —
        // PhantomOptimal alternates a mirror flag per forge, so after an
        // odd number of attacked rounds a reset runner diverged from a
        // fresh one.
        let scenario = quick("reset-attacked")
            .with_schedule(SchedulePolicy::Descending)
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            });
        let mut runner = ScenarioRunner::new(&scenario);
        let mut outcomes = Vec::new();
        let first = runner.run_batch(7, &mut outcomes); // odd forge count
        let first_forged: Vec<_> = outcomes.iter().map(|o| o.transmitted.clone()).collect();
        runner.reset();
        let again = runner.run_batch(7, &mut outcomes);
        let again_forged: Vec<_> = outcomes.iter().map(|o| o.transmitted.clone()).collect();
        assert_eq!(first, again);
        assert_eq!(first_forged, again_forged, "forged streams must restart");
    }

    #[test]
    fn reset_reproduces_the_first_batch() {
        let scenario = quick("reset").with_schedule(SchedulePolicy::Random);
        let mut runner = ScenarioRunner::new(&scenario);
        let mut first = Vec::new();
        runner.run_batch(20, &mut first);
        let firsts: Vec<_> = first.iter().map(|o| o.fusion).collect();
        runner.reset();
        let mut again = Vec::new();
        runner.run_batch(20, &mut again);
        let againsts: Vec<_> = again.iter().map(|o| o.fusion).collect();
        assert_eq!(firsts, againsts);
    }

    #[test]
    fn summaries_expose_fuser_and_detector_names() {
        let summary = ScenarioRunner::new(
            &quick("names")
                .with_fuser(FuserSpec::Hull)
                .with_detector(DetectionMode::Off),
        )
        .run();
        assert_eq!(summary.fuser, "hull");
        assert_eq!(summary.detector, "off");
        assert_eq!(summary.rounds, 200);
        assert_eq!(summary.truth_loss_rate(), 0.0);
    }

    #[test]
    fn every_stock_fuser_and_detector_runs_through_one_entry_point() {
        // The redesign's acceptance criterion, in crate-level miniature:
        // 7 fusers × 3 detectors through the same ScenarioRunner::run.
        let fusers = [
            FuserSpec::Marzullo,
            FuserSpec::BrooksIyengar,
            FuserSpec::Intersection,
            FuserSpec::Hull,
            FuserSpec::InverseVariance,
            FuserSpec::MidpointMedian,
            FuserSpec::Historical {
                max_rate: 3.5,
                dt: 0.1,
            },
        ];
        let detectors = [
            DetectionMode::Off,
            DetectionMode::Immediate,
            DetectionMode::Windowed {
                window: 10,
                tolerance: 3,
            },
        ];
        for fuser in &fusers {
            for detector in &detectors {
                let summary = ScenarioRunner::new(
                    &quick("grid")
                        .with_rounds(40)
                        .with_fuser(fuser.clone())
                        .with_detector(*detector),
                )
                .run();
                assert_eq!(summary.rounds, 40, "{}/{}", summary.fuser, summary.detector);
                assert_eq!(
                    summary.fusion_failures, 0,
                    "{}/{} failed rounds",
                    summary.fuser, summary.detector
                );
            }
        }
    }

    #[test]
    fn run_all_covers_the_registry() {
        let mut presets = scenario::registry();
        for p in &mut presets {
            p.rounds = 30; // keep the sweep fast in debug builds
        }
        let summaries = run_all(&presets);
        assert_eq!(summaries.len(), presets.len());
        for (preset, summary) in presets.iter().zip(&summaries) {
            assert_eq!(summary.scenario, preset.name);
            assert_eq!(summary.rounds, 30);
        }
    }

    #[test]
    fn historical_fuser_degrades_on_silenced_rounds_like_marzullo() {
        // A permanently-silent sensor leaves n = 1 with f = 1: every
        // engine-facing fuser must clamp the budget instead of erroring.
        let base = Scenario::new("silenced", SuiteSpec::Widths(vec![2.0, 2.0]))
            .with_fault(
                0,
                arsf_sensor::FaultModel::new(arsf_sensor::FaultKind::Silent, 1.0),
            )
            .with_rounds(50);
        for fuser in [
            FuserSpec::Marzullo,
            FuserSpec::Historical {
                max_rate: 100.0,
                dt: 0.1,
            },
        ] {
            let summary = ScenarioRunner::new(&base.clone().with_fuser(fuser.clone())).run();
            assert_eq!(
                summary.fusion_failures, 0,
                "{} must clamp f on silenced rounds",
                summary.fuser
            );
            assert_eq!(summary.truth_lost, 0);
        }
    }

    #[test]
    fn failed_round_does_not_erase_standing_condemnations() {
        use arsf_interval::Interval;
        let scenario = quick("condemn");
        let mut summary = BatchSummary::new(&scenario, "marzullo", "windowed");
        let mut fused_round = RoundOutcome {
            truth: 10.0,
            fusion: Ok(Interval::new(9.0, 11.0).unwrap()),
            ..RoundOutcome::default()
        };
        fused_round.condemned.push(2);
        summary.record(&fused_round);
        // A failed round carries no assessment; the detector still holds
        // sensor 2 condemned, and the summary must keep reporting it.
        summary.record(&RoundOutcome::default());
        assert_eq!(summary.condemned, vec![2]);
        assert_eq!(summary.fusion_failures, 1);
    }

    #[test]
    fn failed_round_does_not_count_stale_flags() {
        // Regression: record() used to bump flagged_rounds whenever the
        // outcome's flagged vec was non-empty, even on failed-fusion
        // rounds — but detection only runs on fused rounds, so a stale
        // flagged vec in a reused buffer inflated the count.
        use arsf_interval::Interval;
        let scenario = quick("stale-flags");
        let mut summary = BatchSummary::new(&scenario, "marzullo", "immediate");
        let mut buffer = RoundOutcome {
            truth: 10.0,
            fusion: Ok(Interval::new(9.0, 11.0).unwrap()),
            ..RoundOutcome::default()
        };
        buffer.flagged.push(3);
        summary.record(&buffer);
        assert_eq!(summary.flagged_rounds, 1);
        // The buffer is reused for a failing round whose flagged vec was
        // not cleared by the caller: the stale flag must not count.
        buffer.fusion = Err(arsf_fusion::FusionError::EmptyInput);
        summary.record(&buffer);
        assert_eq!(summary.flagged_rounds, 1, "failed round counted a flag");
        assert_eq!(summary.fusion_failures, 1);
    }

    #[test]
    fn reused_buffers_across_failing_rounds_keep_flag_counts_exact() {
        // End-to-end shape of the same regression: two intermittently
        // biased sensors pulling in opposite directions under Marzullo
        // f = 1 yield a genuine mix of fused, flagged and failed rounds,
        // all driven through one reused buffer.
        use arsf_sensor::{FaultKind, FaultModel};
        let scenario = Scenario::new("flaky", SuiteSpec::Widths(vec![0.5, 0.5, 0.5]))
            .with_fault(0, FaultModel::new(FaultKind::Bias { offset: 40.0 }, 0.5))
            .with_fault(1, FaultModel::new(FaultKind::Bias { offset: -40.0 }, 0.5))
            .with_rounds(200);
        let mut runner = ScenarioRunner::new(&scenario);
        let mut out = RoundOutcome::default();
        let mut summary = BatchSummary::new(&scenario, "marzullo", "immediate");
        let mut fused_flagged = 0;
        for _ in 0..scenario.rounds {
            runner.step_into(&mut out);
            if out.fusion.is_ok() && !out.flagged.is_empty() {
                fused_flagged += 1;
            }
            summary.record(&out);
        }
        assert!(summary.fusion_failures > 0, "opposed biases must collide");
        assert!(fused_flagged > 0, "lone biased rounds must flag");
        assert_eq!(summary.flagged_rounds, fused_flagged);
    }

    #[test]
    fn run_into_matches_run() {
        let scenario = quick("run-into").with_attacker(AttackerSpec::Fixed {
            sensors: vec![0],
            strategy: StrategySpec::PhantomOptimal,
        });
        let fresh = ScenarioRunner::new(&scenario).run();
        let mut reused = RoundOutcome::default();
        // Pre-soil the buffer: run_into must not be confused by it.
        reused.flagged.extend([0, 1, 2]);
        let again = ScenarioRunner::new(&scenario).run_into(&mut reused);
        assert_eq!(fresh, again);
    }

    #[test]
    fn try_new_rejects_impossible_scenarios_with_typed_errors() {
        use crate::scenario::{ClosedLoopSpec, ScenarioError};
        use arsf_sensor::{FaultKind, FaultModel};
        let closed_widths = Scenario::new("bad-suite", SuiteSpec::Widths(vec![1.0, 2.0]))
            .with_closed_loop(ClosedLoopSpec::new(10.0));
        assert!(matches!(
            ScenarioRunner::try_new(&closed_widths),
            Err(ScenarioError::ClosedLoopSuite { .. })
        ));
        let bad_fault = Scenario::new("bad-fault", SuiteSpec::Landshark)
            .with_fault(9, FaultModel::new(FaultKind::Silent, 1.0));
        assert!(matches!(
            ScenarioRunner::try_new(&bad_fault),
            Err(ScenarioError::FaultSensorOutOfRange {
                sensor: 9,
                suite_len: 4
            })
        ));
        let bad_attack =
            Scenario::new("bad-attack", SuiteSpec::Landshark).with_attacker(AttackerSpec::Fixed {
                sensors: vec![7],
                strategy: StrategySpec::PhantomOptimal,
            });
        assert!(matches!(
            ScenarioRunner::try_new(&bad_attack),
            Err(ScenarioError::AttackedSensorOutOfRange {
                sensor: 7,
                suite_len: 4
            })
        ));
        let bad_platoon = Scenario::new("bad-platoon", SuiteSpec::Landshark)
            .with_closed_loop(ClosedLoopSpec::new(10.0).with_platoon(0, 0.01));
        assert!(matches!(
            ScenarioRunner::try_new(&bad_platoon),
            Err(ScenarioError::EmptyPlatoon)
        ));
        // Errors render as readable messages.
        let err = ScenarioRunner::try_new(&bad_fault).unwrap_err();
        assert!(err.to_string().contains("fault sensor index 9"));
        // And everything validate accepts builds.
        assert!(ScenarioRunner::try_new(&quick("fine")).is_ok());
    }

    #[test]
    fn closed_loop_faults_and_nonphantom_attacks_run() {
        // Regression (ISSUE 4): these exact combinations panicked in
        // Scenario::landshark_config before the engines were routed
        // through the pipeline's fault/attacker machinery.
        use crate::scenario::ClosedLoopSpec;
        use arsf_sensor::{FaultKind, FaultModel};
        let base = Scenario::new("cl", SuiteSpec::Landshark)
            .with_rounds(60)
            .with_closed_loop(ClosedLoopSpec::new(10.0));
        let faulted = base
            .clone()
            .with_fault(2, FaultModel::new(FaultKind::Bias { offset: 3.0 }, 0.2));
        let greedy = base.clone().with_attacker(AttackerSpec::Fixed {
            sensors: vec![0],
            strategy: StrategySpec::GreedyHigh,
        });
        let truthful = base.clone().with_attacker(AttackerSpec::Fixed {
            sensors: vec![1],
            strategy: StrategySpec::Truthful,
        });
        let hull = base.clone().with_fuser(FuserSpec::Hull);
        let everything = base
            .with_fault(3, FaultModel::new(FaultKind::Silent, 0.5))
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::GreedyLow,
            })
            .with_fuser(FuserSpec::BrooksIyengar)
            .with_schedule(SchedulePolicy::Descending);
        for scenario in [faulted, greedy, truthful, hull, everything] {
            scenario.validate().expect("supported combination");
            let summary = ScenarioRunner::new(&scenario).run();
            assert_eq!(summary.rounds, 60, "{} stalled", summary.fuser);
            assert!(
                summary.supervisor.is_some(),
                "closed-loop rows carry supervisor stats"
            );
        }
    }

    #[test]
    fn platoon_summaries_carry_per_vehicle_statistics() {
        use crate::scenario::ClosedLoopSpec;
        let scenario = Scenario::new("pv", SuiteSpec::Landshark)
            .with_rounds(120)
            .with_attacker(AttackerSpec::RandomEachRound)
            .with_closed_loop(ClosedLoopSpec::new(10.0).with_platoon(3, 0.01));
        let mut runner = ScenarioRunner::new(&scenario);
        let summary = runner.run();
        assert_eq!(summary.vehicles.len(), 3, "one aggregate per vehicle");
        for (i, vehicle) in summary.vehicles.iter().enumerate() {
            assert_eq!(
                vehicle.widths.count() + vehicle.fusion_failures,
                120,
                "vehicle {i} accounts for every control period"
            );
        }
        // The leader's aggregate is exactly the summary's headline stats.
        assert_eq!(summary.vehicles[0].widths, summary.widths);
        assert_eq!(summary.vehicles[0].truth_lost, summary.truth_lost);
        // Statistics are cumulative, like the supervisor's.
        let again = runner.run();
        assert_eq!(
            again.vehicles[0].widths.count() + again.vehicles[0].fusion_failures,
            240
        );
        // Single-vehicle and open-loop runs carry no per-vehicle rows.
        let single = Scenario::new("sv", SuiteSpec::Landshark)
            .with_rounds(20)
            .with_closed_loop(ClosedLoopSpec::new(10.0));
        assert!(ScenarioRunner::new(&single).run().vehicles.is_empty());
        assert!(ScenarioRunner::new(&quick("ol")).run().vehicles.is_empty());
    }

    #[test]
    fn attacked_descending_widens_relative_to_ascending() {
        // The paper's schedule result through the declarative API.
        let base = quick("sched").with_attacker(AttackerSpec::Fixed {
            sensors: vec![0],
            strategy: StrategySpec::PhantomOptimal,
        });
        let asc = ScenarioRunner::new(&base.clone().with_schedule(SchedulePolicy::Ascending)).run();
        let desc = ScenarioRunner::new(&base.with_schedule(SchedulePolicy::Descending)).run();
        assert!(desc.widths.mean() > asc.widths.mean());
        assert_eq!(asc.truth_lost, 0, "fa <= f keeps the truth");
        assert_eq!(desc.truth_lost, 0, "fa <= f keeps the truth");
    }
}
