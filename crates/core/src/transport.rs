//! Executing a fusion round over the `arsf-bus` broadcast substrate.
//!
//! [`FusionPipeline`](crate::FusionPipeline) drives rounds directly for
//! experiment throughput; this module runs the *same* round through real
//! bus machinery — sensor nodes, an eavesdropping attacker node per
//! compromised sensor (sharing one brain), and a fusion controller node —
//! demonstrating that the paper's information model (the attacker sees
//! exactly the frames broadcast before her slot) is faithfully realised
//! by a CAN-style broadcast transport.

use std::cell::RefCell;
use std::rc::Rc;

use arsf_attack::model::{AttackMode, AttackStrategy, SlotContext};
use arsf_attack::{delta, AttackerConfig};
use arsf_bus::{
    BroadcastBus, FixedSensorNode, Frame, FrameId, Node, NodeContext, NodeId, Payload, Ticks,
};
use arsf_detect::OverlapDetector;
use arsf_fusion::{marzullo, FusionError};
use arsf_interval::Interval;
use arsf_schedule::TransmissionOrder;

/// The observable outcome of one bus round.
#[derive(Debug, Clone, PartialEq)]
pub struct BusRound {
    /// Every frame that hit the wire, in order.
    pub frames: Vec<Frame>,
    /// Measurement payloads in transmission order.
    pub transmitted: Vec<(usize, Interval<f64>)>,
    /// The controller's fusion result.
    pub fusion: Result<Interval<f64>, FusionError>,
    /// Sensors the controller flagged (broadcast as alert frames too).
    pub flagged: Vec<usize>,
}

/// Runs one fusion round over a freshly-built broadcast bus.
///
/// `readings[i]` is sensor `i`'s **correct** reading for this round (the
/// attacker reads hers before forging); `order` fixes the TDMA slots; the
/// controller transmits last and broadcasts its fusion interval plus one
/// alert frame per flagged sensor.
///
/// # Panics
///
/// Panics if `readings`, `widths` and `order` disagree on the sensor
/// count, or if a compromised index is out of range.
///
/// # Example
///
/// ```
/// use arsf_core::transport::run_bus_round;
/// use arsf_interval::Interval;
/// use arsf_schedule::TransmissionOrder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let readings = vec![
///     Interval::new(9.9, 10.1)?,
///     Interval::new(9.5, 10.5)?,
///     Interval::new(9.0, 11.0)?,
/// ];
/// let widths = vec![0.2, 1.0, 2.0];
/// let order = TransmissionOrder::identity(3);
/// let round = run_bus_round(&readings, &widths, &order, 1, None);
/// assert!(round.fusion.clone()?.contains(10.0));
/// assert_eq!(round.transmitted.len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn run_bus_round(
    readings: &[Interval<f64>],
    widths: &[f64],
    order: &TransmissionOrder,
    f: usize,
    attacker: Option<(AttackerConfig, Box<dyn AttackStrategy>)>,
) -> BusRound {
    let n = readings.len();
    assert_eq!(widths.len(), n, "one width per sensor");
    assert_eq!(order.len(), n, "one slot per sensor");

    let mut bus = BroadcastBus::new();
    let controller_id = NodeId::new(n);

    let brain = attacker.map(|(cfg, strategy)| {
        assert!(
            cfg.compromised().iter().all(|&i| i < n),
            "compromised sensor index out of range"
        );
        let own: Vec<Interval<f64>> = cfg.compromised().iter().map(|&s| readings[s]).collect();
        let own_delta = delta(&own).expect("attacker controls at least one sensor");
        Rc::new(RefCell::new(AttackerBrain {
            cfg,
            strategy,
            seen: Vec::new(),
            last_tick: Ticks::new(0),
            delta: own_delta,
            widths: widths.to_vec(),
            order: order.clone(),
            n,
            f,
        }))
    });

    // Sensor nodes: honest ones broadcast their reading; compromised ones
    // are attacker taps sharing the brain.
    for (sensor, &reading) in readings.iter().enumerate() {
        let node_id = NodeId::new(sensor);
        let frame_id = FrameId::new(0x100 + sensor as u32);
        let compromised = brain
            .as_ref()
            .is_some_and(|b| b.borrow().cfg.controls(sensor));
        if compromised {
            bus.add_node(Box::new(AttackerSensorNode {
                id: node_id,
                sensor,
                frame_id,
                own_correct: reading,
                brain: Rc::clone(brain.as_ref().expect("checked compromised")),
            }));
        } else {
            let mut node = FixedSensorNode::new(node_id, frame_id, sensor);
            node.set_reading(reading);
            bus.add_node(Box::new(node));
        }
    }
    bus.add_node(Box::new(ControllerNode {
        id: controller_id,
        expected: n,
        f,
        collected: Vec::new(),
        fusion: None,
        flagged: Vec::new(),
    }));

    // TDMA: sensor slots in schedule order, controller last.
    let mut owners: Vec<NodeId> = order.iter().map(|&s| NodeId::new(s)).collect();
    owners.push(controller_id);
    let frames = bus.run_slots(&owners);

    let transmitted: Vec<(usize, Interval<f64>)> = frames
        .iter()
        .filter_map(|fr| match fr.payload {
            Payload::Measurement { sensor, interval } => Some((sensor, interval)),
            _ => None,
        })
        .collect();

    let controller = bus
        .node_mut(controller_id)
        .expect("controller connected above");
    let controller = controller
        .as_any()
        .downcast_ref::<ControllerNode>()
        .expect("controller node type");
    BusRound {
        fusion: controller.fusion.unwrap_or(Err(FusionError::EmptyInput)),
        flagged: controller.flagged.clone(),
        transmitted,
        frames,
    }
}

struct AttackerBrain {
    cfg: AttackerConfig,
    strategy: Box<dyn AttackStrategy>,
    seen: Vec<(usize, Interval<f64>)>,
    last_tick: Ticks,
    delta: Interval<f64>,
    widths: Vec<f64>,
    order: TransmissionOrder,
    n: usize,
    f: usize,
}

impl AttackerBrain {
    /// Records a measurement frame once, even though every attacker tap
    /// observes it (frames carry strictly increasing ticks).
    fn observe(&mut self, frame: &Frame) {
        if frame.tick <= self.last_tick {
            return;
        }
        if let Payload::Measurement { sensor, interval } = frame.payload {
            self.seen.push((sensor, interval));
            self.last_tick = frame.tick;
        }
    }

    fn forge(&mut self, sensor: usize, own_correct: Interval<f64>) -> Interval<f64> {
        let slot = self
            .order
            .slot_of(sensor)
            .expect("compromised sensor is scheduled");
        let unsent_attacked = self
            .order
            .as_slice()
            .iter()
            .skip(slot)
            .filter(|&&s| self.cfg.controls(s))
            .count();
        let future_own_widths: Vec<f64> = self
            .order
            .as_slice()
            .iter()
            .skip(slot + 1)
            .filter(|&&s| self.cfg.controls(s))
            .map(|&s| self.widths[s])
            .collect();
        let mode = AttackMode::for_slot(self.seen.len(), self.n, self.f, unsent_attacked);
        let ctx = SlotContext {
            order: &self.order,
            slot,
            sensor,
            width: self.widths[sensor],
            seen: &self.seen,
            delta: self.delta,
            own_correct,
            mode,
            n: self.n,
            f: self.f,
            future_own_widths: &future_own_widths,
            compromised: self.cfg.compromised(),
            all_widths: &self.widths,
        };
        self.strategy.forge(&ctx)
    }
}

/// One compromised sensor's bus presence: eavesdrops on everything via
/// the shared brain and forges in its own slot.
struct AttackerSensorNode {
    id: NodeId,
    sensor: usize,
    frame_id: FrameId,
    own_correct: Interval<f64>,
    brain: Rc<RefCell<AttackerBrain>>,
}

impl Node for AttackerSensorNode {
    fn id(&self) -> NodeId {
        self.id
    }

    fn on_frame(&mut self, frame: &Frame, _ctx: &mut NodeContext) {
        self.brain.borrow_mut().observe(frame);
    }

    fn on_slot(&mut self, ctx: &mut NodeContext) {
        let forged = self.brain.borrow_mut().forge(self.sensor, self.own_correct);
        ctx.transmit(
            self.frame_id,
            Payload::Measurement {
                sensor: self.sensor,
                interval: forged,
            },
        );
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

/// The fusion controller: collects measurement frames, fuses in its slot,
/// broadcasts the fusion interval and alert frames for flagged sensors.
struct ControllerNode {
    id: NodeId,
    expected: usize,
    f: usize,
    collected: Vec<(usize, Interval<f64>)>,
    fusion: Option<Result<Interval<f64>, FusionError>>,
    flagged: Vec<usize>,
}

impl Node for ControllerNode {
    fn id(&self) -> NodeId {
        self.id
    }

    fn on_frame(&mut self, frame: &Frame, _ctx: &mut NodeContext) {
        if let Payload::Measurement { sensor, interval } = frame.payload {
            self.collected.push((sensor, interval));
        }
    }

    fn on_slot(&mut self, ctx: &mut NodeContext) {
        let intervals: Vec<Interval<f64>> = self.collected.iter().map(|(_, iv)| *iv).collect();
        debug_assert_eq!(intervals.len(), self.expected, "missing measurements");
        let fusion = marzullo::fuse(&intervals, self.f);
        if let Ok(fused) = &fusion {
            ctx.transmit(FrameId::new(0x050), Payload::Fusion { interval: *fused });
            let report = OverlapDetector.detect(&intervals, fused);
            self.flagged = report
                .flagged
                .iter()
                .map(|&i| self.collected[i].0)
                .collect();
            for &sensor in &self.flagged {
                ctx.transmit(FrameId::new(0x040), Payload::Alert { sensor });
            }
        }
        self.fusion = Some(fusion);
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arsf_attack::strategies::PhantomOptimal;
    use arsf_attack::Truthful;

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    fn readings() -> Vec<Interval<f64>> {
        vec![iv(9.9, 10.1), iv(9.6, 10.6), iv(9.2, 11.2)]
    }

    #[test]
    fn honest_bus_round_matches_direct_fusion() {
        let r = readings();
        let widths = vec![0.2, 1.0, 2.0];
        let order = TransmissionOrder::identity(3);
        let round = run_bus_round(&r, &widths, &order, 1, None);
        let direct = marzullo::fuse(&r, 1);
        assert_eq!(round.fusion, direct);
        assert!(round.flagged.is_empty());
        // n measurement frames + 1 fusion frame on the wire.
        assert_eq!(round.frames.len(), 4);
    }

    #[test]
    fn transmission_respects_schedule_order() {
        let r = readings();
        let widths = vec![0.2, 1.0, 2.0];
        let order = TransmissionOrder::new(vec![2, 0, 1]).unwrap();
        let round = run_bus_round(&r, &widths, &order, 1, None);
        let sensors: Vec<usize> = round.transmitted.iter().map(|(s, _)| *s).collect();
        assert_eq!(sensors, vec![2, 0, 1]);
    }

    #[test]
    fn truthful_attacker_is_transparent() {
        let r = readings();
        let widths = vec![0.2, 1.0, 2.0];
        let order = TransmissionOrder::identity(3);
        let attacked = Some((AttackerConfig::new([0], 1), Box::new(Truthful) as _));
        let round = run_bus_round(&r, &widths, &order, 1, attacked);
        assert_eq!(round.fusion, marzullo::fuse(&r, 1));
    }

    #[test]
    fn eavesdropping_attacker_stays_stealthy_and_widens_fusion() {
        let r = readings();
        let widths = vec![0.2, 1.0, 2.0];
        // Descending: the attacked precise sensor transmits last.
        let order = TransmissionOrder::new(vec![2, 1, 0]).unwrap();
        let attacked = Some((
            AttackerConfig::new([0], 1),
            Box::new(PhantomOptimal::new()) as _,
        ));
        let round = run_bus_round(&r, &widths, &order, 1, attacked);
        let attacked_width = round.fusion.unwrap().width();
        let honest_width = marzullo::fuse(&r, 1).unwrap().width();
        assert!(
            round.flagged.is_empty(),
            "optimal attacker is never flagged"
        );
        assert!(
            attacked_width >= honest_width,
            "attack {attacked_width} must not lose to honesty {honest_width}"
        );
    }

    #[test]
    fn blatant_forgery_triggers_alert_frames() {
        // A custom strategy that ignores stealth entirely.
        struct Blatant;
        impl AttackStrategy for Blatant {
            fn forge(&mut self, ctx: &SlotContext<'_>) -> Interval<f64> {
                Interval::centered(ctx.own_correct.midpoint() + 100.0, ctx.width * 0.5)
                    .expect("finite")
            }
            fn name(&self) -> &str {
                "blatant"
            }
        }
        let r = readings();
        let widths = vec![0.2, 1.0, 2.0];
        let order = TransmissionOrder::identity(3);
        let attacked = Some((AttackerConfig::new([0], 1), Box::new(Blatant) as _));
        let round = run_bus_round(&r, &widths, &order, 1, attacked);
        assert_eq!(round.flagged, vec![0]);
        let alerts = round
            .frames
            .iter()
            .filter(|f| matches!(f.payload, Payload::Alert { .. }))
            .count();
        assert_eq!(alerts, 1);
    }

    #[test]
    fn multi_sensor_attacker_shares_one_brain() {
        // n = 5, f = 2, attacker controls sensors 0 and 1.
        let r = vec![
            iv(9.9, 10.1),
            iv(9.8, 10.2),
            iv(9.5, 10.5),
            iv(9.0, 11.0),
            iv(8.5, 11.5),
        ];
        let widths = vec![0.2, 0.4, 1.0, 2.0, 3.0];
        let order = TransmissionOrder::new(vec![4, 3, 2, 0, 1]).unwrap();
        let attacked = Some((
            AttackerConfig::new([0, 1], 2),
            Box::new(PhantomOptimal::new()) as _,
        ));
        let round = run_bus_round(&r, &widths, &order, 2, attacked);
        assert!(round.fusion.is_ok());
        assert!(round.flagged.is_empty());
        assert_eq!(round.transmitted.len(), 5);
    }
}
