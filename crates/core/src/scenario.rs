//! Declarative scenario descriptions and the named-preset registry.
//!
//! A [`Scenario`] captures *everything* one experiment needs — sensor
//! suite, fault injection, attacker, transmission schedule, fusion
//! algorithm, detector, ground-truth trajectory, round count and RNG
//! seed — as plain data. The [`ScenarioRunner`](crate::ScenarioRunner)
//! materialises it into a [`FusionPipeline`](crate::FusionPipeline) over
//! boxed [`Fuser`]/[`Detector`](arsf_detect::Detector) trait objects, so
//! any combination of the stock algorithms (and any user-supplied
//! implementation, via [`Scenario::build_pipeline`] plus the builder)
//! runs through the same engine entry point.
//!
//! [`registry`] holds the named presets used across the examples, tests
//! and benches: the LandShark case study under each schedule, the
//! detection ablations, and the algorithm-comparison sweeps.

use arsf_attack::strategies::{GreedyExtreme, PhantomOptimal, Side};
use arsf_attack::{AttackStrategy, AttackerConfig, Truthful};
use arsf_fusion::historical::{DynamicsBound, HistoricalFuser};

use crate::closed_loop::landshark::LandSharkConfig;
use arsf_fusion::{
    BrooksIyengarFuser, Fuser, HullFuser, IntersectionFuser, InverseVarianceFuser, MarzulloFuser,
    MidpointMedianFuser,
};
use arsf_schedule::SchedulePolicy;
use arsf_sensor::{FaultModel, SensorSuite};

use crate::{DetectionMode, FusionPipeline, PipelineConfig};

/// A scenario combination the engines genuinely cannot execute.
///
/// Returned by [`Scenario::validate`] (and
/// [`ScenarioRunner::try_new`](crate::ScenarioRunner::try_new)) so
/// harnesses can reject an impossible cell with a typed error instead of
/// a panic. Everything *not* listed here is a supported combination: any
/// fuser, any attack strategy and any fault set run both open- and
/// closed-loop.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// A fault model references a sensor index the suite does not have.
    FaultSensorOutOfRange {
        /// The offending sensor index.
        sensor: usize,
        /// The suite's sensor count.
        suite_len: usize,
    },
    /// A fixed attacker references a sensor index the suite does not
    /// have.
    AttackedSensorOutOfRange {
        /// The offending sensor index.
        sensor: usize,
        /// The suite's sensor count.
        suite_len: usize,
    },
    /// Closed-loop execution drives a LandShark, whose physical sensors
    /// *are* the LandShark suite — other suites cannot be bolted onto the
    /// vehicle.
    ClosedLoopSuite {
        /// The rejected suite's label.
        suite: String,
    },
    /// A closed-loop envelope must have a finite target speed and
    /// finite, non-negative half-widths — the supervisor cannot encode
    /// anything else.
    InvalidEnvelope {
        /// The rejected target speed.
        target_speed: f64,
        /// The rejected upper half-width `δ1`.
        delta_up: f64,
        /// The rejected lower half-width `δ2`.
        delta_down: f64,
    },
    /// A closed-loop platoon needs at least one vehicle.
    EmptyPlatoon,
    /// A closed-loop platoon's initial gap must be a positive finite
    /// number of miles.
    InvalidPlatoonGap {
        /// The rejected gap.
        gap_miles: f64,
    },
}

impl core::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ScenarioError::FaultSensorOutOfRange { sensor, suite_len } => write!(
                f,
                "fault sensor index {sensor} out of range for a {suite_len}-sensor suite"
            ),
            ScenarioError::AttackedSensorOutOfRange { sensor, suite_len } => write!(
                f,
                "compromised sensor index {sensor} out of range for a {suite_len}-sensor suite"
            ),
            ScenarioError::ClosedLoopSuite { suite } => write!(
                f,
                "closed-loop scenarios run the LandShark suite, not `{suite}`"
            ),
            ScenarioError::InvalidEnvelope {
                target_speed,
                delta_up,
                delta_down,
            } => write!(
                f,
                "closed-loop envelope must have a finite target and finite non-negative \
                 half-widths, got target {target_speed}, \u{3b4}1 {delta_up}, \u{3b4}2 {delta_down}"
            ),
            ScenarioError::EmptyPlatoon => write!(f, "a platoon needs at least one vehicle"),
            ScenarioError::InvalidPlatoonGap { gap_miles } => write!(
                f,
                "platoon initial gap must be positive and finite, got {gap_miles}"
            ),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Which sensor suite a scenario instantiates.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SuiteSpec {
    /// The LandShark case-study suite (two encoders, GPS, camera).
    Landshark,
    /// A uniform-noise suite with the given interval widths (the Table I
    /// style `L = {…}` description).
    Widths(Vec<f64>),
}

impl SuiteSpec {
    /// Builds the suite.
    pub fn build(&self) -> SensorSuite {
        match self {
            SuiteSpec::Landshark => arsf_sensor::suite::landshark(),
            SuiteSpec::Widths(widths) => arsf_sensor::suite::from_widths(widths),
        }
    }

    /// The number of sensors the built suite will have.
    pub fn len(&self) -> usize {
        match self {
            SuiteSpec::Landshark => self.build().len(),
            SuiteSpec::Widths(widths) => widths.len(),
        }
    }

    /// The declared interval widths of the built suite, in sensor-id
    /// order — the a-priori information the paper's static guarantees
    /// (Marzullo's regime conditions, Theorem 2) are computed from,
    /// without sampling a single reading.
    pub fn widths(&self) -> Vec<f64> {
        match self {
            SuiteSpec::Landshark => self.build().widths(),
            SuiteSpec::Widths(widths) => widths.clone(),
        }
    }

    /// Whether the built suite would be empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A compact report label, e.g. `landshark` or `widths[5|11|17]`.
    pub fn label(&self) -> String {
        match self {
            SuiteSpec::Landshark => "landshark".to_string(),
            SuiteSpec::Widths(widths) => {
                let ws: Vec<String> = widths.iter().map(|w| format!("{w}")).collect();
                format!("widths[{}]", ws.join("|"))
            }
        }
    }
}

/// Which streaming attack strategy a scenario's attacker runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StrategySpec {
    /// The stealthy width-maximiser (never flagged).
    PhantomOptimal,
    /// Greedy extreme placement towards the high side.
    GreedyHigh,
    /// Greedy extreme placement towards the low side.
    GreedyLow,
    /// Transmit the correct reading (attack-infrastructure baseline).
    Truthful,
}

impl StrategySpec {
    /// Builds the strategy.
    pub fn build(&self) -> Box<dyn AttackStrategy> {
        match self {
            StrategySpec::PhantomOptimal => Box::new(PhantomOptimal::new()),
            StrategySpec::GreedyHigh => Box::new(GreedyExtreme::new(Side::High)),
            StrategySpec::GreedyLow => Box::new(GreedyExtreme::new(Side::Low)),
            StrategySpec::Truthful => Box::new(Truthful),
        }
    }

    /// The built strategy's report name.
    pub fn name(&self) -> &'static str {
        match self {
            StrategySpec::PhantomOptimal => "phantom-optimal",
            StrategySpec::GreedyHigh => "greedy-high",
            StrategySpec::GreedyLow => "greedy-low",
            StrategySpec::Truthful => "truthful",
        }
    }

    /// How the strategy's transmitted intervals relate to the overlap
    /// check, statically (see [`StrategyVisibility`]).
    ///
    /// Both the phantom forger and the greedy extreme placers route
    /// every proposal through the shared stealth clamp (the paper's
    /// Section III-A argument): in passive mode the forged interval
    /// contains Δ (and hence the truth), in active mode it is shifted to
    /// touch the intersection of the correct intervals seen so far —
    /// a point of maximal coverage, inside the Marzullo interval when
    /// the round's corruption stays within budget. They are therefore
    /// [`StrategyVisibility::Stealthy`]; the truthful baseline transmits
    /// the correct reading outright.
    pub fn visibility(&self) -> StrategyVisibility {
        match self {
            StrategySpec::PhantomOptimal | StrategySpec::GreedyHigh | StrategySpec::GreedyLow => {
                StrategyVisibility::Stealthy
            }
            StrategySpec::Truthful => StrategyVisibility::Honest,
        }
    }
}

/// The static visibility class of an attack strategy: what the overlap
/// check can ever see of it, before a round is run.
///
/// The companion of [`Scenario::static_model`] on the detection side:
/// [`StrategySpec::visibility`] and [`AttackerSpec::visibility`] derive
/// it from the declaration alone, and the static detectability analysis
/// in `arsf-analyze` turns it into per-cell verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StrategyVisibility {
    /// Transmits the correct reading: indistinguishable from an honest
    /// sensor, so the overlap check never fires on it (and no budget
    /// argument is needed).
    Honest,
    /// Forgeries are stealth-clamped to stay in contact with the fusion
    /// interval (Section III-A): provably invisible to the overlap check
    /// under Marzullo-family fusion while at most one sensor per round
    /// is attacked within budget.
    Stealthy,
    /// No static placement claim: whether the overlap check fires
    /// depends on magnitudes and runtime state.
    Opportunistic,
}

impl StrategyVisibility {
    /// The strategy's rank in the attacker-strength lattice: honest (no
    /// forgery) below stealthy (clamped forgery) below opportunistic
    /// (unconstrained placement — the full-knowledge worst case, since
    /// nothing restricts where its forgeries land).
    pub fn strength_rank(self) -> u8 {
        match self {
            StrategyVisibility::Honest => 0,
            StrategyVisibility::Stealthy => 1,
            StrategyVisibility::Opportunistic => 2,
        }
    }
}

/// The scenario's attacker model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AttackerSpec {
    /// No attacker (honest baseline).
    None,
    /// A fixed compromised set running one strategy for the whole run.
    Fixed {
        /// Compromised sensor indices.
        sensors: Vec<usize>,
        /// The streaming strategy they execute.
        strategy: StrategySpec,
    },
    /// One compromised sensor re-drawn uniformly every round, running the
    /// stealthy [`StrategySpec::PhantomOptimal`] forger — Table II's
    /// "any sensor can be attacked" model. Works in both execution modes:
    /// the runner swaps only the attacker *config* on a persistent
    /// strategy each round.
    RandomEachRound,
}

impl AttackerSpec {
    /// A compact report label, e.g. `honest` or `phantom-optimal@0|2`.
    pub fn label(&self) -> String {
        match self {
            AttackerSpec::None => "honest".to_string(),
            AttackerSpec::Fixed { sensors, strategy } => {
                let ids: Vec<String> = sensors.iter().map(|s| format!("{s}")).collect();
                format!("{}@{}", strategy.name(), ids.join("|"))
            }
            AttackerSpec::RandomEachRound => "random-each-round".to_string(),
        }
    }

    /// The visibility class of the strategy this attacker runs (see
    /// [`StrategyVisibility`]): honest for no attacker, the fixed
    /// strategy's own class for a fixed set, and stealthy for the
    /// random-each-round model (which always forges with
    /// [`StrategySpec::PhantomOptimal`]).
    pub fn visibility(&self) -> StrategyVisibility {
        match self {
            AttackerSpec::None => StrategyVisibility::Honest,
            AttackerSpec::Fixed { strategy, .. } => strategy.visibility(),
            AttackerSpec::RandomEachRound => StrategySpec::PhantomOptimal.visibility(),
        }
    }

    /// The worst-case number of *distinct* sensors this attacker forges
    /// in a single round: the stealth clamp's coverage argument only
    /// closes when at most one sensor per round is attacked.
    pub fn max_attacked_per_round(&self) -> usize {
        match self {
            AttackerSpec::None => 0,
            AttackerSpec::Fixed { sensors, strategy } => {
                if *strategy == StrategySpec::Truthful {
                    0
                } else {
                    let distinct: std::collections::BTreeSet<usize> =
                        sensors.iter().copied().collect();
                    distinct.len()
                }
            }
            AttackerSpec::RandomEachRound => 1,
        }
    }

    /// Compares two attackers in the strength lattice: the product order
    /// of the strategy's [`StrategyVisibility::strength_rank`] and
    /// [`AttackerSpec::max_attacked_per_round`].
    ///
    /// `Some(Less)` means `self` is provably the weaker attacker — its
    /// strategy class is no more capable *and* it forges no more sensors
    /// per round — so no worst-case metric bound can be larger under it.
    /// `None` means the two are incomparable (one axis says weaker, the
    /// other stronger), and the static dominance pass makes no claim.
    pub fn strength_partial_cmp(&self, other: &AttackerSpec) -> Option<std::cmp::Ordering> {
        use std::cmp::Ordering;
        let rank = |a: &AttackerSpec| (a.visibility().strength_rank(), a.max_attacked_per_round());
        let (va, ca) = rank(self);
        let (vb, cb) = rank(other);
        match (va.cmp(&vb), ca.cmp(&cb)) {
            (Ordering::Equal, count) => Some(count),
            (visibility, Ordering::Equal) => Some(visibility),
            (visibility, count) if visibility == count => Some(visibility),
            _ => None,
        }
    }

    /// The `(config, strategy)` pair an engine installs for this attacker
    /// (`None` for honest runs).
    ///
    /// [`AttackerSpec::RandomEachRound`] is installed with an **empty**
    /// compromised set and a persistent [`PhantomOptimal`]: the runner
    /// swaps only the attacker config to the round's drawn sensor (see
    /// [`FusionPipeline::set_attacker_config`]), never re-boxing the
    /// strategy. Both the open-loop pipeline and the closed-loop vehicle
    /// engines build their attacker through this one method.
    pub fn build(&self, f: usize) -> Option<(AttackerConfig, Box<dyn AttackStrategy>)> {
        match self {
            AttackerSpec::None => None,
            AttackerSpec::Fixed { sensors, strategy } => Some((
                AttackerConfig::new(sensors.iter().copied(), f),
                strategy.build(),
            )),
            AttackerSpec::RandomEachRound => Some((
                AttackerConfig::new([], f),
                StrategySpec::PhantomOptimal.build(),
            )),
        }
    }
}

/// Attaches fault models to a built suite — the single wiring point both
/// the open-loop pipeline and the closed-loop vehicle engines use.
///
/// # Panics
///
/// Panics if a fault's sensor index is out of range for the suite
/// ([`Scenario::validate`] reports the same condition as a typed error).
pub(crate) fn apply_faults(suite: &mut SensorSuite, faults: &[(usize, FaultModel)]) {
    for (sensor, fault) in faults {
        let sensors = suite.sensors_mut();
        assert!(*sensor < sensors.len(), "fault sensor index out of range");
        sensors[*sensor] = sensors[*sensor].clone().with_fault(*fault);
    }
}

/// A compact, CSV-safe label for one fault-injection set, e.g. `none` or
/// `0:bias(3)@0.2|2:silent@1` — the sweep reports use it so two rows of a
/// `fault_sets(...)` axis stay distinguishable.
pub fn faults_label(faults: &[(usize, FaultModel)]) -> String {
    if faults.is_empty() {
        return "none".to_string();
    }
    let parts: Vec<String> = faults
        .iter()
        .map(|(sensor, fault)| {
            let kind = match fault.kind() {
                arsf_sensor::FaultKind::StuckAt { value } => format!("stuck({value})"),
                arsf_sensor::FaultKind::Bias { offset } => format!("bias({offset})"),
                arsf_sensor::FaultKind::Scale { factor } => format!("scale({factor})"),
                arsf_sensor::FaultKind::Silent => "silent".to_string(),
                other => format!("{other:?}").to_lowercase(),
            };
            format!("{sensor}:{kind}@{}", fault.probability())
        })
        .collect();
    parts.join("|")
}

/// Which fusion algorithm the scenario's engine runs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FuserSpec {
    /// Marzullo's algorithm at the scenario's `f` (the paper's choice).
    Marzullo,
    /// Brooks–Iyengar hybrid fusion at the scenario's `f`.
    BrooksIyengar,
    /// Common intersection (`f = 0`): precise but brittle.
    Intersection,
    /// Convex hull (`f = n − 1`): never wrong, never precise.
    Hull,
    /// Inverse-variance weighted mean (probabilistic baseline, not
    /// attack-resilient).
    InverseVariance,
    /// Midpoint median (classical robust baseline).
    MidpointMedian,
    /// Dynamics-aware historical Marzullo fusion at the scenario's `f`.
    Historical {
        /// Rate bound `|dx/dt| ≤ max_rate`.
        max_rate: f64,
        /// Inter-round period in seconds.
        dt: f64,
    },
}

impl FuserSpec {
    /// Builds the fuser with the scenario's fault assumption `f`.
    pub fn build(&self, f: usize) -> Box<dyn Fuser<f64>> {
        match *self {
            FuserSpec::Marzullo => Box::new(MarzulloFuser::new(f)),
            FuserSpec::BrooksIyengar => Box::new(BrooksIyengarFuser::new(f)),
            FuserSpec::Intersection => Box::new(IntersectionFuser),
            FuserSpec::Hull => Box::new(HullFuser),
            FuserSpec::InverseVariance => Box::new(InverseVarianceFuser),
            FuserSpec::MidpointMedian => Box::new(MidpointMedianFuser),
            FuserSpec::Historical { max_rate, dt } => {
                Box::new(HistoricalFuser::new(f, DynamicsBound::new(max_rate), dt))
            }
        }
    }

    /// The built fuser's report name.
    pub fn name(&self) -> &'static str {
        match self {
            FuserSpec::Marzullo => "marzullo",
            FuserSpec::BrooksIyengar => "brooks-iyengar",
            FuserSpec::Intersection => "intersection",
            FuserSpec::Hull => "hull",
            FuserSpec::InverseVariance => "inverse-variance",
            FuserSpec::MidpointMedian => "midpoint-median",
            FuserSpec::Historical { .. } => "historical",
        }
    }
}

/// The ground-truth trajectory driving a scenario's rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum TruthSpec {
    /// The measured variable holds one value (the case study's cruise).
    Constant(f64),
    /// Linear drift: `start + rate_per_round · round`.
    Ramp {
        /// Value at round 0.
        start: f64,
        /// Per-round increment.
        rate_per_round: f64,
    },
}

impl TruthSpec {
    /// The ground truth at a round index.
    pub fn at(&self, round: u64) -> f64 {
        match *self {
            TruthSpec::Constant(v) => v,
            TruthSpec::Ramp {
                start,
                rate_per_round,
            } => start + rate_per_round * round as f64,
        }
    }
}

/// A platoon extension of a closed-loop scenario: how many vehicles and
/// the initial spacing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatoonSpec {
    /// Number of vehicles (leader first).
    pub size: usize,
    /// Initial inter-vehicle gap in miles.
    pub gap_miles: f64,
}

/// Closed-loop execution: drive a LandShark (or a platoon of them)
/// through the vehicle control loop instead of an open-loop
/// [`FusionPipeline`](crate::FusionPipeline).
///
/// The scenario's schedule, fault assumption `f`, fuser, detector,
/// attacker, rounds and seed all carry over; the ground truth is the
/// vehicle's *actual speed* (so [`TruthSpec`] is ignored), and the
/// summary gains the supervisor's Table II columns
/// ([`SupervisorSummary`](crate::metrics::SupervisorSummary)).
///
/// Any fault set, any [`AttackerSpec`] (with any [`StrategySpec`]) and
/// any [`FuserSpec`] runs closed-loop — the vehicle engines route
/// through the same fault/attacker machinery as the open-loop pipeline.
/// The only genuinely impossible combination is a non-LandShark suite
/// (the vehicle's physical sensors *are* the LandShark suite); see
/// [`Scenario::validate`] for the typed [`ScenarioError`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedLoopSpec {
    /// Target speed `v` in mph.
    pub target_speed: f64,
    /// Upper envelope half-width `δ1`.
    pub delta_up: f64,
    /// Lower envelope half-width `δ2`.
    pub delta_down: f64,
    /// Run a platoon instead of a single vehicle.
    pub platoon: Option<PlatoonSpec>,
}

impl ClosedLoopSpec {
    /// The case study's envelope around a target speed:
    /// `δ1 = δ2 = 0.5` mph, single vehicle.
    pub fn new(target_speed: f64) -> Self {
        Self {
            target_speed,
            delta_up: 0.5,
            delta_down: 0.5,
            platoon: None,
        }
    }

    /// Sets the envelope half-widths (builder style).
    #[must_use]
    pub fn with_deltas(mut self, delta_up: f64, delta_down: f64) -> Self {
        self.delta_up = delta_up;
        self.delta_down = delta_down;
        self
    }

    /// Runs a platoon of `size` vehicles spaced `gap_miles` apart
    /// (builder style).
    #[must_use]
    pub fn with_platoon(mut self, size: usize, gap_miles: f64) -> Self {
        self.platoon = Some(PlatoonSpec { size, gap_miles });
        self
    }
}

/// The a-priori corruption model of one scenario — everything the static
/// guarantee analysis (Marzullo's regime conditions, Theorem 2) needs,
/// extracted from the declaration alone: no sensors built, no rounds run.
///
/// Produced by [`Scenario::static_model`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct StaticModel {
    /// Declared interval widths, in sensor-id order.
    pub widths: Vec<f64>,
    /// The fusion fault assumption `f`.
    pub f: usize,
    /// Worst-case number of *transmitting* sensors whose intervals may
    /// exclude the truth in one round: the distinct sensors carrying a
    /// non-silent fault, union the fixed compromised set, plus one for a
    /// random-each-round attacker — capped at the suite size.
    pub corrupt: usize,
    /// Number of distinct sensors a `Silent` fault can drop from a round
    /// (the worst case silences all of them at once).
    pub silent: usize,
    /// Worst-case per-round drift `|Δtruth|` of the measured variable:
    /// `Some(0.0)` for constant truth, the absolute ramp rate for a
    /// ramp, and `None` closed-loop, where the truth is the vehicle's
    /// actual speed and no static drift bound exists.
    pub truth_rate: Option<f64>,
    /// Fused outputs per round: the platoon size closed-loop, else 1.
    pub vehicles: usize,
}

/// A complete, declarative experiment description.
///
/// # Example
///
/// ```
/// use arsf_core::scenario::{FuserSpec, Scenario, SuiteSpec};
/// use arsf_core::ScenarioRunner;
///
/// let scenario = Scenario::new("bi-demo", SuiteSpec::Landshark)
///     .with_fuser(FuserSpec::BrooksIyengar)
///     .with_rounds(50);
/// let summary = ScenarioRunner::new(&scenario).run();
/// assert_eq!(summary.fuser, "brooks-iyengar");
/// assert_eq!(summary.rounds, 50);
/// assert_eq!(summary.fusion_failures, 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Registry / report name.
    pub name: String,
    /// The sensor suite.
    pub suite: SuiteSpec,
    /// Fault models attached to sensors before the run, as
    /// `(sensor index, fault)` pairs.
    pub faults: Vec<(usize, FaultModel)>,
    /// The attacker model.
    pub attacker: AttackerSpec,
    /// The communication schedule.
    pub schedule: SchedulePolicy,
    /// The fusion fault assumption `f`.
    pub f: usize,
    /// The fusion algorithm.
    pub fuser: FuserSpec,
    /// The detector.
    pub detector: DetectionMode,
    /// The ground-truth trajectory.
    pub truth: TruthSpec,
    /// Rounds per run.
    pub rounds: u64,
    /// RNG seed (runs are deterministic given the scenario).
    pub seed: u64,
    /// Closed-loop execution: when set, the runner drives a
    /// [`LandShark`](crate::closed_loop::landshark::LandShark) (or a
    /// [`Platoon`](crate::closed_loop::platoon::Platoon)) instead of an
    /// open-loop pipeline.
    pub closed_loop: Option<ClosedLoopSpec>,
}

impl Scenario {
    /// A scenario with the paper's defaults: `f = 1`, Ascending schedule,
    /// Marzullo fusion, immediate detection, constant truth 10.0,
    /// 1000 rounds, a fixed seed, no faults, no attacker.
    pub fn new(name: impl Into<String>, suite: SuiteSpec) -> Self {
        Self {
            name: name.into(),
            suite,
            faults: Vec::new(),
            attacker: AttackerSpec::None,
            schedule: SchedulePolicy::Ascending,
            f: 1,
            fuser: FuserSpec::Marzullo,
            detector: DetectionMode::Immediate,
            truth: TruthSpec::Constant(10.0),
            rounds: 1000,
            seed: 2014,
            closed_loop: None,
        }
    }

    /// Renames the scenario (builder style).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Attaches a fault model to a sensor (builder style).
    #[must_use]
    pub fn with_fault(mut self, sensor: usize, fault: FaultModel) -> Self {
        self.faults.push((sensor, fault));
        self
    }

    /// Sets the attacker (builder style).
    #[must_use]
    pub fn with_attacker(mut self, attacker: AttackerSpec) -> Self {
        self.attacker = attacker;
        self
    }

    /// Sets the schedule (builder style).
    #[must_use]
    pub fn with_schedule(mut self, schedule: SchedulePolicy) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the fault assumption `f` (builder style).
    #[must_use]
    pub fn with_f(mut self, f: usize) -> Self {
        self.f = f;
        self
    }

    /// Sets the fusion algorithm (builder style).
    #[must_use]
    pub fn with_fuser(mut self, fuser: FuserSpec) -> Self {
        self.fuser = fuser;
        self
    }

    /// Sets the detector (builder style).
    #[must_use]
    pub fn with_detector(mut self, detector: DetectionMode) -> Self {
        self.detector = detector;
        self
    }

    /// Sets the truth trajectory (builder style).
    #[must_use]
    pub fn with_truth(mut self, truth: TruthSpec) -> Self {
        self.truth = truth;
        self
    }

    /// Sets the round count (builder style).
    #[must_use]
    pub fn with_rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the RNG seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switches the scenario to closed-loop vehicle execution (builder
    /// style).
    #[must_use]
    pub fn with_closed_loop(mut self, spec: ClosedLoopSpec) -> Self {
        self.closed_loop = Some(spec);
        self
    }

    /// Extracts the [`StaticModel`] this scenario declares: widths, the
    /// fault assumption, and the worst-case corruption/silence budgets,
    /// all without building a sensor or running a round.
    ///
    /// A sensor carrying both a silent and a corrupting fault counts in
    /// both budgets — over rounds, either can manifest, and the analysis
    /// takes the worst case. Fault probabilities are ignored (a fault
    /// that *can* fire counts), and out-of-range indices are capped at
    /// the suite size ([`Scenario::validate`] reports them as errors).
    pub fn static_model(&self) -> StaticModel {
        use std::collections::BTreeSet;
        let widths = self.suite.widths();
        let n = widths.len();
        let mut silent = BTreeSet::new();
        let mut corrupt = BTreeSet::new();
        for (sensor, fault) in &self.faults {
            if matches!(fault.kind(), arsf_sensor::FaultKind::Silent) {
                silent.insert(*sensor);
            } else {
                corrupt.insert(*sensor);
            }
        }
        let extra = match &self.attacker {
            AttackerSpec::None => 0,
            AttackerSpec::Fixed { sensors, strategy } => {
                // A truthful "attacker" transmits the correct reading.
                if *strategy != StrategySpec::Truthful {
                    corrupt.extend(sensors.iter().copied());
                }
                0
            }
            AttackerSpec::RandomEachRound => 1,
        };
        let truth_rate = if self.closed_loop.is_some() {
            None
        } else {
            Some(match self.truth {
                TruthSpec::Constant(_) => 0.0,
                TruthSpec::Ramp { rate_per_round, .. } => rate_per_round.abs(),
            })
        };
        let vehicles = self
            .closed_loop
            .as_ref()
            .and_then(|spec| spec.platoon.as_ref())
            .map_or(1, |platoon| platoon.size.max(1));
        StaticModel {
            widths,
            f: self.f,
            corrupt: (corrupt.len() + extra).min(n),
            silent: silent.len().min(n),
            truth_rate,
            vehicles,
        }
    }

    /// Checks the scenario for combinations the engines genuinely cannot
    /// execute.
    ///
    /// A scenario passing `validate` is guaranteed to build and run: any
    /// fuser × any attack strategy × any fault set, in both execution
    /// modes. The only rejections are referential (a fault or compromised
    /// index outside the suite) and physical (closed-loop execution on a
    /// suite that is not the LandShark's, a degenerate platoon).
    ///
    /// # Errors
    ///
    /// Returns the first [`ScenarioError`] found.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let suite_len = self.suite.len();
        for (sensor, _) in &self.faults {
            if *sensor >= suite_len {
                return Err(ScenarioError::FaultSensorOutOfRange {
                    sensor: *sensor,
                    suite_len,
                });
            }
        }
        if let AttackerSpec::Fixed { sensors, .. } = &self.attacker {
            for &sensor in sensors {
                if sensor >= suite_len {
                    return Err(ScenarioError::AttackedSensorOutOfRange { sensor, suite_len });
                }
            }
        }
        if let Some(spec) = &self.closed_loop {
            if self.suite != SuiteSpec::Landshark {
                return Err(ScenarioError::ClosedLoopSuite {
                    suite: self.suite.label(),
                });
            }
            let envelope_ok = spec.target_speed.is_finite()
                && spec.delta_up.is_finite()
                && spec.delta_up >= 0.0
                && spec.delta_down.is_finite()
                && spec.delta_down >= 0.0;
            if !envelope_ok {
                return Err(ScenarioError::InvalidEnvelope {
                    target_speed: spec.target_speed,
                    delta_up: spec.delta_up,
                    delta_down: spec.delta_down,
                });
            }
            if let Some(platoon) = spec.platoon {
                if platoon.size == 0 {
                    return Err(ScenarioError::EmptyPlatoon);
                }
                if !(platoon.gap_miles > 0.0 && platoon.gap_miles.is_finite()) {
                    return Err(ScenarioError::InvalidPlatoonGap {
                        gap_miles: platoon.gap_miles,
                    });
                }
            }
        }
        Ok(())
    }

    /// Materialises the scenario into an engine over boxed trait objects.
    ///
    /// # Panics
    ///
    /// Panics if a fault or compromised-sensor index is out of range for
    /// the suite ([`Scenario::validate`] reports the same conditions as
    /// typed errors).
    pub fn build_pipeline(&self) -> FusionPipeline<Box<dyn Fuser<f64>>> {
        let mut suite = self.suite.build();
        apply_faults(&mut suite, &self.faults);
        let config =
            PipelineConfig::new(self.f, self.schedule.clone()).with_detection(self.detector);
        let builder = FusionPipeline::builder(suite)
            .config(config)
            .fuser(self.fuser.build(self.f));
        match self.attacker.build(self.f) {
            None => builder.build(),
            Some((attacker, strategy)) => builder.attacker(attacker, strategy).build(),
        }
    }

    /// Maps a closed-loop scenario onto the vehicle configuration the
    /// runner materialises into a
    /// [`LandShark`](crate::closed_loop::landshark::LandShark).
    ///
    /// The scenario's fault set, attacker (any strategy), fuser, detector,
    /// schedule and fault assumption `f` all carry over verbatim — the
    /// vehicle engine runs them through the same machinery as the
    /// open-loop pipeline. For [`FuserSpec::Historical`] the fuser's `dt`
    /// also becomes the control period.
    ///
    /// # Panics
    ///
    /// Panics when the scenario is not closed-loop or fails
    /// [`Scenario::validate`] (use `validate` first for a typed
    /// [`ScenarioError`]).
    pub fn landshark_config(&self) -> LandSharkConfig {
        self.validate()
            .unwrap_or_else(|e| panic!("invalid scenario `{}`: {e}", self.name));
        let spec = self
            .closed_loop
            .as_ref()
            .expect("landshark_config needs a closed-loop scenario");
        let mut config = LandSharkConfig::new(spec.target_speed, self.schedule.clone());
        config.delta_up = spec.delta_up;
        config.delta_down = spec.delta_down;
        config.f = self.f;
        if let FuserSpec::Historical { dt, .. } = self.fuser {
            config.dt = dt;
        }
        config.faults = self.faults.clone();
        config.attacker = self.attacker.clone();
        config.detection = self.detector;
        config.fuser = self.fuser.clone();
        config
    }
}

/// The built-in named presets: the case study under each schedule, the
/// detection ablations, and algorithm-comparison scenarios.
///
/// Names are unique; [`find`] looks one up.
pub fn registry() -> Vec<Scenario> {
    let attacked = |schedule: SchedulePolicy| {
        Scenario::new(
            format!("landshark-{}-attacked", schedule.name()),
            SuiteSpec::Landshark,
        )
        .with_schedule(schedule)
        .with_attacker(AttackerSpec::Fixed {
            sensors: vec![0],
            strategy: StrategySpec::PhantomOptimal,
        })
    };
    vec![
        Scenario::new("landshark-honest", SuiteSpec::Landshark),
        attacked(SchedulePolicy::Ascending),
        attacked(SchedulePolicy::Descending),
        attacked(SchedulePolicy::Random),
        attacked(SchedulePolicy::Descending)
            .named("landshark-descending-historical")
            .with_fuser(FuserSpec::Historical {
                max_rate: 3.5,
                dt: 0.1,
            }),
        attacked(SchedulePolicy::Descending)
            .named("landshark-descending-brooks-iyengar")
            .with_fuser(FuserSpec::BrooksIyengar),
        attacked(SchedulePolicy::Descending)
            .named("ablation-detection-off")
            .with_detector(DetectionMode::Off),
        Scenario::new("ablation-windowed-gps-fault", SuiteSpec::Landshark)
            .with_fault(
                2,
                FaultModel::new(arsf_sensor::FaultKind::Bias { offset: 3.0 }, 0.2),
            )
            .with_detector(DetectionMode::Windowed {
                window: 20,
                tolerance: 6,
            }),
        Scenario::new("table1-n3", SuiteSpec::Widths(vec![5.0, 11.0, 17.0]))
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            })
            .with_truth(TruthSpec::Constant(0.0)),
        Scenario::new("platoon-ramp", SuiteSpec::Landshark)
            .with_truth(TruthSpec::Ramp {
                start: 10.0,
                rate_per_round: 0.002,
            })
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::GreedyHigh,
            }),
        // Sweep-era presets: the platoon family and the stealthy-attacker
        // × windowed-detector design space the grid sweeps explore.
        Scenario::new("platoon-stealthy-windowed", SuiteSpec::Landshark)
            .with_truth(TruthSpec::Ramp {
                start: 10.0,
                rate_per_round: 0.002,
            })
            .with_schedule(SchedulePolicy::Descending)
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            })
            .with_detector(DetectionMode::Windowed {
                window: 20,
                tolerance: 6,
            }),
        Scenario::new("platoon-greedy-low", SuiteSpec::Landshark)
            .with_truth(TruthSpec::Ramp {
                start: 10.0,
                rate_per_round: -0.002,
            })
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::GreedyLow,
            }),
        Scenario::new("platoon-historical-windowed", SuiteSpec::Landshark)
            .with_truth(TruthSpec::Ramp {
                start: 10.0,
                rate_per_round: 0.002,
            })
            .with_schedule(SchedulePolicy::Descending)
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            })
            .with_fuser(FuserSpec::Historical {
                max_rate: 3.5,
                dt: 0.1,
            })
            .with_detector(DetectionMode::Windowed {
                window: 20,
                tolerance: 6,
            }),
        Scenario::new("stealthy-windowed-strict", SuiteSpec::Landshark)
            .with_schedule(SchedulePolicy::Descending)
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            })
            .with_detector(DetectionMode::Windowed {
                window: 10,
                tolerance: 2,
            }),
        Scenario::new("stealthy-windowed-lenient", SuiteSpec::Landshark)
            .with_schedule(SchedulePolicy::Descending)
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            })
            .with_detector(DetectionMode::Windowed {
                window: 30,
                tolerance: 10,
            }),
        Scenario::new("greedy-high-windowed", SuiteSpec::Landshark)
            .with_schedule(SchedulePolicy::Descending)
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::GreedyHigh,
            })
            .with_detector(DetectionMode::Windowed {
                window: 10,
                tolerance: 3,
            }),
        Scenario::new(
            "table1-n5-stealthy",
            SuiteSpec::Widths(vec![5.0, 5.0, 5.0, 5.0, 20.0]),
        )
        .with_f(2)
        .with_attacker(AttackerSpec::Fixed {
            sensors: vec![0],
            strategy: StrategySpec::PhantomOptimal,
        })
        .with_truth(TruthSpec::Constant(0.0)),
        // Closed-loop presets: Table II's three schedule cells (one
        // uniformly-random compromised sensor per round, LandShark at
        // 10 mph inside the [9.5, 10.5] envelope) and the platoon under
        // the historical-fusion defence.
        table2_preset(SchedulePolicy::Ascending),
        table2_preset(SchedulePolicy::Descending),
        table2_preset(SchedulePolicy::Random),
        // The formerly-impossible closed-loop combinations, now plain
        // cells: fault injection and non-phantom strategies in the loop.
        Scenario::new("table2-faulted-gps", SuiteSpec::Landshark)
            .with_attacker(AttackerSpec::RandomEachRound)
            .with_fault(
                2,
                FaultModel::new(arsf_sensor::FaultKind::Bias { offset: 3.0 }, 0.2),
            )
            .with_detector(DetectionMode::Windowed {
                window: 20,
                tolerance: 6,
            })
            .with_closed_loop(ClosedLoopSpec::new(10.0)),
        Scenario::new("table2-greedy-descending", SuiteSpec::Landshark)
            .with_schedule(SchedulePolicy::Descending)
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::GreedyHigh,
            })
            .with_closed_loop(ClosedLoopSpec::new(10.0)),
        Scenario::new("platoon-historical", SuiteSpec::Landshark)
            .with_schedule(SchedulePolicy::Descending)
            .with_attacker(AttackerSpec::RandomEachRound)
            .with_fuser(FuserSpec::Historical {
                max_rate: 3.5,
                dt: 0.1,
            })
            .with_closed_loop(ClosedLoopSpec::new(10.0).with_platoon(3, 0.01)),
        // Regression-baseline base scenarios: the golden grids CI's
        // `baseline-check` job re-runs are built around these two (see
        // `arsf_bench::golden`), so their axes are part of the committed
        // baselines' content addresses — change them and the baselines
        // must be re-recorded.
        Scenario::new("baseline-open-loop", SuiteSpec::Landshark)
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            })
            .with_rounds(120),
        Scenario::new("baseline-table2", SuiteSpec::Landshark)
            .with_attacker(AttackerSpec::RandomEachRound)
            .with_rounds(200)
            .with_closed_loop(ClosedLoopSpec::new(10.0)),
    ]
}

fn table2_preset(schedule: SchedulePolicy) -> Scenario {
    Scenario::new(format!("table2-{}", schedule.name()), SuiteSpec::Landshark)
        .with_schedule(schedule)
        .with_attacker(AttackerSpec::RandomEachRound)
        .with_closed_loop(ClosedLoopSpec::new(10.0))
}

/// Looks a preset up by name.
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let presets = registry();
        let mut names: Vec<&str> = presets.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate preset names");
        for preset in &presets {
            let found = find(&preset.name).expect("every preset resolves");
            assert_eq!(&found, preset, "{} round-trips", preset.name);
        }
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn suite_specs_build_correct_sizes() {
        assert_eq!(
            SuiteSpec::Landshark.build().len(),
            SuiteSpec::Landshark.len()
        );
        let widths = SuiteSpec::Widths(vec![1.0, 2.0]);
        assert_eq!(widths.build().len(), 2);
        assert!(!widths.is_empty());
    }

    #[test]
    fn fuser_specs_build_matching_names() {
        let specs = [
            FuserSpec::Marzullo,
            FuserSpec::BrooksIyengar,
            FuserSpec::Intersection,
            FuserSpec::Hull,
            FuserSpec::InverseVariance,
            FuserSpec::MidpointMedian,
            FuserSpec::Historical {
                max_rate: 1.0,
                dt: 0.1,
            },
        ];
        for spec in specs {
            assert_eq!(spec.build(1).name(), spec.name());
        }
    }

    #[test]
    fn static_model_extracts_widths_and_budgets() {
        let scenario = Scenario::new("sm", SuiteSpec::Landshark)
            .with_fault(2, FaultModel::new(arsf_sensor::FaultKind::Silent, 0.5))
            .with_fault(
                3,
                FaultModel::new(arsf_sensor::FaultKind::Bias { offset: 3.0 }, 0.2),
            )
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0, 3],
                strategy: StrategySpec::PhantomOptimal,
            });
        let model = scenario.static_model();
        assert_eq!(model.widths, vec![0.2, 0.2, 1.0, 2.0]);
        assert_eq!(model.f, 1);
        // Sensor 3 is faulted *and* attacked: distinct count is {0, 3}.
        assert_eq!(model.corrupt, 2);
        assert_eq!(model.silent, 1);
        assert_eq!(model.truth_rate, Some(0.0));
        assert_eq!(model.vehicles, 1);
    }

    #[test]
    fn static_model_truthful_attacker_does_not_corrupt() {
        let scenario =
            Scenario::new("sm", SuiteSpec::Landshark).with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::Truthful,
            });
        assert_eq!(scenario.static_model().corrupt, 0);
    }

    #[test]
    fn strategy_visibility_classes() {
        for stealthy in [
            StrategySpec::PhantomOptimal,
            StrategySpec::GreedyHigh,
            StrategySpec::GreedyLow,
        ] {
            assert_eq!(stealthy.visibility(), StrategyVisibility::Stealthy);
        }
        assert_eq!(
            StrategySpec::Truthful.visibility(),
            StrategyVisibility::Honest
        );
        assert_eq!(AttackerSpec::None.visibility(), StrategyVisibility::Honest);
        assert_eq!(
            AttackerSpec::RandomEachRound.visibility(),
            StrategyVisibility::Stealthy
        );
    }

    #[test]
    fn max_attacked_counts_distinct_forging_sensors() {
        assert_eq!(AttackerSpec::None.max_attacked_per_round(), 0);
        assert_eq!(AttackerSpec::RandomEachRound.max_attacked_per_round(), 1);
        let fixed = AttackerSpec::Fixed {
            sensors: vec![0, 2, 0],
            strategy: StrategySpec::GreedyHigh,
        };
        assert_eq!(fixed.max_attacked_per_round(), 2);
        let truthful = AttackerSpec::Fixed {
            sensors: vec![0, 1],
            strategy: StrategySpec::Truthful,
        };
        assert_eq!(truthful.max_attacked_per_round(), 0);
    }

    #[test]
    fn strength_partial_cmp_is_the_product_order() {
        use std::cmp::Ordering;
        let honest = AttackerSpec::None;
        let random = AttackerSpec::RandomEachRound;
        let phantom_two = AttackerSpec::Fixed {
            sensors: vec![0, 2],
            strategy: StrategySpec::PhantomOptimal,
        };
        let truthful = AttackerSpec::Fixed {
            sensors: vec![0, 1, 2],
            strategy: StrategySpec::Truthful,
        };
        // Honest below any armed stealthy attacker; reflexive equality.
        assert_eq!(honest.strength_partial_cmp(&random), Some(Ordering::Less));
        assert_eq!(
            random.strength_partial_cmp(&honest),
            Some(Ordering::Greater)
        );
        assert_eq!(honest.strength_partial_cmp(&honest), Some(Ordering::Equal));
        // Same visibility class, more forged sensors: strictly stronger.
        assert_eq!(
            random.strength_partial_cmp(&phantom_two),
            Some(Ordering::Less)
        );
        // Truthful forges nothing: equal strength to no attacker at all.
        assert_eq!(
            honest.strength_partial_cmp(&truthful),
            Some(Ordering::Equal)
        );
        // Ranks come from the visibility lattice.
        assert_eq!(StrategyVisibility::Honest.strength_rank(), 0);
        assert_eq!(StrategyVisibility::Stealthy.strength_rank(), 1);
        assert_eq!(StrategyVisibility::Opportunistic.strength_rank(), 2);
    }

    #[test]
    fn static_model_random_attacker_adds_one_corruption() {
        let scenario =
            Scenario::new("sm", SuiteSpec::Landshark).with_attacker(AttackerSpec::RandomEachRound);
        assert_eq!(scenario.static_model().corrupt, 1);
    }

    #[test]
    fn static_model_closed_loop_platoon_and_unknown_drift() {
        let scenario = Scenario::new("sm", SuiteSpec::Landshark)
            .with_closed_loop(ClosedLoopSpec::new(10.0).with_platoon(3, 0.05));
        let model = scenario.static_model();
        assert_eq!(model.vehicles, 3);
        assert_eq!(model.truth_rate, None);
        let ramp = Scenario::new("sm", SuiteSpec::Landshark).with_truth(TruthSpec::Ramp {
            start: 5.0,
            rate_per_round: -0.25,
        });
        assert_eq!(ramp.static_model().truth_rate, Some(0.25));
    }

    #[test]
    fn truth_trajectories_evaluate() {
        assert_eq!(TruthSpec::Constant(10.0).at(99), 10.0);
        let ramp = TruthSpec::Ramp {
            start: 1.0,
            rate_per_round: 0.5,
        };
        assert_eq!(ramp.at(0), 1.0);
        assert_eq!(ramp.at(4), 3.0);
    }

    #[test]
    fn build_pipeline_applies_faults_and_attacker() {
        let scenario = Scenario::new("t", SuiteSpec::Landshark)
            .with_fault(2, FaultModel::new(arsf_sensor::FaultKind::Silent, 1.0))
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::Truthful,
            });
        let mut pipeline = scenario.build_pipeline();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let out = pipeline.run_round(10.0, &mut rng);
        // The silenced GPS never transmits.
        assert_eq!(out.transmitted.len(), 3);
        assert!(out.transmitted.iter().all(|(s, _)| *s != 2));
    }

    #[test]
    #[should_panic(expected = "fault sensor index out of range")]
    fn out_of_range_fault_panics() {
        let _ = Scenario::new("t", SuiteSpec::Widths(vec![1.0]))
            .with_fault(5, FaultModel::new(arsf_sensor::FaultKind::Silent, 1.0))
            .build_pipeline();
    }

    #[test]
    fn validate_accepts_supported_and_rejects_impossible_combinations() {
        // The full formerly-panicking closed-loop space is now valid.
        let supported = Scenario::new("ok", SuiteSpec::Landshark)
            .with_fault(2, FaultModel::new(arsf_sensor::FaultKind::Silent, 0.5))
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::GreedyLow,
            })
            .with_fuser(FuserSpec::BrooksIyengar)
            .with_closed_loop(ClosedLoopSpec::new(10.0).with_platoon(3, 0.01));
        assert_eq!(supported.validate(), Ok(()));
        // Genuinely impossible combos come back as typed errors.
        let bad_suite = Scenario::new("bad", SuiteSpec::Widths(vec![1.0, 2.0]))
            .with_closed_loop(ClosedLoopSpec::new(10.0));
        assert_eq!(
            bad_suite.validate(),
            Err(ScenarioError::ClosedLoopSuite {
                suite: "widths[1|2]".to_string()
            })
        );
        let bad_fault = Scenario::new("bad", SuiteSpec::Landshark)
            .with_fault(4, FaultModel::new(arsf_sensor::FaultKind::Silent, 1.0));
        assert_eq!(
            bad_fault.validate(),
            Err(ScenarioError::FaultSensorOutOfRange {
                sensor: 4,
                suite_len: 4
            })
        );
        let bad_gap = Scenario::new("bad", SuiteSpec::Landshark)
            .with_closed_loop(ClosedLoopSpec::new(10.0).with_platoon(2, f64::NAN));
        assert!(matches!(
            bad_gap.validate(),
            Err(ScenarioError::InvalidPlatoonGap { .. })
        ));
        // Degenerate envelopes are typed errors instead of supervisor
        // panics deep inside a sweep worker.
        for spec in [
            ClosedLoopSpec::new(f64::NAN),
            ClosedLoopSpec::new(10.0).with_deltas(-0.5, 0.5),
            ClosedLoopSpec::new(10.0).with_deltas(0.5, f64::INFINITY),
        ] {
            let bad = Scenario::new("bad", SuiteSpec::Landshark).with_closed_loop(spec);
            assert!(
                matches!(bad.validate(), Err(ScenarioError::InvalidEnvelope { .. })),
                "{spec:?} must be rejected"
            );
        }
        assert!(Scenario::new("zero", SuiteSpec::Landshark)
            .with_closed_loop(ClosedLoopSpec::new(10.0).with_deltas(0.0, 0.0))
            .validate()
            .is_ok());
    }

    #[test]
    fn landshark_config_carries_faults_fusers_and_strategies() {
        // Regression: each of these axes used to hit an assert in
        // landshark_config; now they map onto the vehicle configuration
        // verbatim.
        let scenario = Scenario::new("cl", SuiteSpec::Landshark)
            .with_fault(2, FaultModel::new(arsf_sensor::FaultKind::Silent, 0.5))
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::GreedyHigh,
            })
            .with_fuser(FuserSpec::BrooksIyengar)
            .with_detector(DetectionMode::Off)
            .with_closed_loop(ClosedLoopSpec::new(12.0).with_deltas(0.4, 0.6));
        let config = scenario.landshark_config();
        assert_eq!(config.faults, scenario.faults);
        assert_eq!(config.attacker, scenario.attacker);
        assert_eq!(config.fuser, FuserSpec::BrooksIyengar);
        assert_eq!(config.detection, DetectionMode::Off);
        assert_eq!(config.target_speed, 12.0);
        assert_eq!((config.delta_up, config.delta_down), (0.4, 0.6));
        assert_eq!(
            config.dt, 0.1,
            "non-historical fusers keep the 100 ms period"
        );
        // Historical fusion also sets the control period from its dt.
        let historical = Scenario::new("cl-h", SuiteSpec::Landshark)
            .with_fuser(FuserSpec::Historical {
                max_rate: 3.5,
                dt: 0.05,
            })
            .with_closed_loop(ClosedLoopSpec::new(10.0));
        assert_eq!(historical.landshark_config().dt, 0.05);
    }

    #[test]
    #[should_panic(expected = "LandShark suite")]
    fn closed_loop_on_a_widths_suite_panics_via_validate() {
        let _ = Scenario::new("bad", SuiteSpec::Widths(vec![1.0]))
            .with_closed_loop(ClosedLoopSpec::new(10.0))
            .landshark_config();
    }

    #[test]
    fn report_labels_are_compact_and_csv_safe() {
        assert_eq!(SuiteSpec::Landshark.label(), "landshark");
        assert_eq!(
            SuiteSpec::Widths(vec![5.0, 11.0, 17.0]).label(),
            "widths[5|11|17]"
        );
        assert_eq!(AttackerSpec::None.label(), "honest");
        assert_eq!(
            AttackerSpec::Fixed {
                sensors: vec![0, 2],
                strategy: StrategySpec::GreedyLow,
            }
            .label(),
            "greedy-low@0|2"
        );
        // Strategy spec names mirror the built strategies' report names.
        for spec in [
            StrategySpec::PhantomOptimal,
            StrategySpec::GreedyHigh,
            StrategySpec::GreedyLow,
            StrategySpec::Truthful,
        ] {
            assert_eq!(spec.build().name(), spec.name());
        }
    }
}
