//! Declarative scenario descriptions and the named-preset registry.
//!
//! A [`Scenario`] captures *everything* one experiment needs — sensor
//! suite, fault injection, attacker, transmission schedule, fusion
//! algorithm, detector, ground-truth trajectory, round count and RNG
//! seed — as plain data. The [`ScenarioRunner`](crate::ScenarioRunner)
//! materialises it into a [`FusionPipeline`](crate::FusionPipeline) over
//! boxed [`Fuser`]/[`Detector`](arsf_detect::Detector) trait objects, so
//! any combination of the stock algorithms (and any user-supplied
//! implementation, via [`Scenario::build_pipeline`] plus the builder)
//! runs through the same engine entry point.
//!
//! [`registry`] holds the named presets used across the examples, tests
//! and benches: the LandShark case study under each schedule, the
//! detection ablations, and the algorithm-comparison sweeps.

use arsf_attack::strategies::{GreedyExtreme, PhantomOptimal, Side};
use arsf_attack::{AttackStrategy, AttackerConfig, Truthful};
use arsf_fusion::historical::{DynamicsBound, HistoricalFuser};

use crate::closed_loop::landshark::{AttackSelection, LandSharkConfig};
use arsf_fusion::{
    BrooksIyengarFuser, Fuser, HullFuser, IntersectionFuser, InverseVarianceFuser, MarzulloFuser,
    MidpointMedianFuser,
};
use arsf_schedule::SchedulePolicy;
use arsf_sensor::{FaultModel, SensorSuite};

use crate::{DetectionMode, FusionPipeline, PipelineConfig};

/// Which sensor suite a scenario instantiates.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SuiteSpec {
    /// The LandShark case-study suite (two encoders, GPS, camera).
    Landshark,
    /// A uniform-noise suite with the given interval widths (the Table I
    /// style `L = {…}` description).
    Widths(Vec<f64>),
}

impl SuiteSpec {
    /// Builds the suite.
    pub fn build(&self) -> SensorSuite {
        match self {
            SuiteSpec::Landshark => arsf_sensor::suite::landshark(),
            SuiteSpec::Widths(widths) => arsf_sensor::suite::from_widths(widths),
        }
    }

    /// The number of sensors the built suite will have.
    pub fn len(&self) -> usize {
        match self {
            SuiteSpec::Landshark => self.build().len(),
            SuiteSpec::Widths(widths) => widths.len(),
        }
    }

    /// Whether the built suite would be empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A compact report label, e.g. `landshark` or `widths[5|11|17]`.
    pub fn label(&self) -> String {
        match self {
            SuiteSpec::Landshark => "landshark".to_string(),
            SuiteSpec::Widths(widths) => {
                let ws: Vec<String> = widths.iter().map(|w| format!("{w}")).collect();
                format!("widths[{}]", ws.join("|"))
            }
        }
    }
}

/// Which streaming attack strategy a scenario's attacker runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StrategySpec {
    /// The stealthy width-maximiser (never flagged).
    PhantomOptimal,
    /// Greedy extreme placement towards the high side.
    GreedyHigh,
    /// Greedy extreme placement towards the low side.
    GreedyLow,
    /// Transmit the correct reading (attack-infrastructure baseline).
    Truthful,
}

impl StrategySpec {
    /// Builds the strategy.
    pub fn build(&self) -> Box<dyn AttackStrategy> {
        match self {
            StrategySpec::PhantomOptimal => Box::new(PhantomOptimal::new()),
            StrategySpec::GreedyHigh => Box::new(GreedyExtreme::new(Side::High)),
            StrategySpec::GreedyLow => Box::new(GreedyExtreme::new(Side::Low)),
            StrategySpec::Truthful => Box::new(Truthful),
        }
    }

    /// The built strategy's report name.
    pub fn name(&self) -> &'static str {
        match self {
            StrategySpec::PhantomOptimal => "phantom-optimal",
            StrategySpec::GreedyHigh => "greedy-high",
            StrategySpec::GreedyLow => "greedy-low",
            StrategySpec::Truthful => "truthful",
        }
    }
}

/// The scenario's attacker model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AttackerSpec {
    /// No attacker (honest baseline).
    None,
    /// A fixed compromised set running one strategy for the whole run.
    Fixed {
        /// Compromised sensor indices.
        sensors: Vec<usize>,
        /// The streaming strategy they execute.
        strategy: StrategySpec,
    },
    /// One compromised sensor re-drawn uniformly every round, running the
    /// stealthy [`StrategySpec::PhantomOptimal`] forger — Table II's
    /// "any sensor can be attacked" model. Works in both execution modes:
    /// the runner swaps only the attacker *config* on a persistent
    /// strategy each round.
    RandomEachRound,
}

impl AttackerSpec {
    /// A compact report label, e.g. `honest` or `phantom-optimal@0|2`.
    pub fn label(&self) -> String {
        match self {
            AttackerSpec::None => "honest".to_string(),
            AttackerSpec::Fixed { sensors, strategy } => {
                let ids: Vec<String> = sensors.iter().map(|s| format!("{s}")).collect();
                format!("{}@{}", strategy.name(), ids.join("|"))
            }
            AttackerSpec::RandomEachRound => "random-each-round".to_string(),
        }
    }
}

/// A compact, CSV-safe label for one fault-injection set, e.g. `none` or
/// `0:bias(3)@0.2|2:silent@1` — the sweep reports use it so two rows of a
/// `fault_sets(...)` axis stay distinguishable.
pub fn faults_label(faults: &[(usize, FaultModel)]) -> String {
    if faults.is_empty() {
        return "none".to_string();
    }
    let parts: Vec<String> = faults
        .iter()
        .map(|(sensor, fault)| {
            let kind = match fault.kind() {
                arsf_sensor::FaultKind::StuckAt { value } => format!("stuck({value})"),
                arsf_sensor::FaultKind::Bias { offset } => format!("bias({offset})"),
                arsf_sensor::FaultKind::Scale { factor } => format!("scale({factor})"),
                arsf_sensor::FaultKind::Silent => "silent".to_string(),
                other => format!("{other:?}").to_lowercase(),
            };
            format!("{sensor}:{kind}@{}", fault.probability())
        })
        .collect();
    parts.join("|")
}

/// Which fusion algorithm the scenario's engine runs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FuserSpec {
    /// Marzullo's algorithm at the scenario's `f` (the paper's choice).
    Marzullo,
    /// Brooks–Iyengar hybrid fusion at the scenario's `f`.
    BrooksIyengar,
    /// Common intersection (`f = 0`): precise but brittle.
    Intersection,
    /// Convex hull (`f = n − 1`): never wrong, never precise.
    Hull,
    /// Inverse-variance weighted mean (probabilistic baseline, not
    /// attack-resilient).
    InverseVariance,
    /// Midpoint median (classical robust baseline).
    MidpointMedian,
    /// Dynamics-aware historical Marzullo fusion at the scenario's `f`.
    Historical {
        /// Rate bound `|dx/dt| ≤ max_rate`.
        max_rate: f64,
        /// Inter-round period in seconds.
        dt: f64,
    },
}

impl FuserSpec {
    /// Builds the fuser with the scenario's fault assumption `f`.
    pub fn build(&self, f: usize) -> Box<dyn Fuser<f64>> {
        match *self {
            FuserSpec::Marzullo => Box::new(MarzulloFuser::new(f)),
            FuserSpec::BrooksIyengar => Box::new(BrooksIyengarFuser::new(f)),
            FuserSpec::Intersection => Box::new(IntersectionFuser),
            FuserSpec::Hull => Box::new(HullFuser),
            FuserSpec::InverseVariance => Box::new(InverseVarianceFuser),
            FuserSpec::MidpointMedian => Box::new(MidpointMedianFuser),
            FuserSpec::Historical { max_rate, dt } => {
                Box::new(HistoricalFuser::new(f, DynamicsBound::new(max_rate), dt))
            }
        }
    }

    /// The built fuser's report name.
    pub fn name(&self) -> &'static str {
        match self {
            FuserSpec::Marzullo => "marzullo",
            FuserSpec::BrooksIyengar => "brooks-iyengar",
            FuserSpec::Intersection => "intersection",
            FuserSpec::Hull => "hull",
            FuserSpec::InverseVariance => "inverse-variance",
            FuserSpec::MidpointMedian => "midpoint-median",
            FuserSpec::Historical { .. } => "historical",
        }
    }
}

/// The ground-truth trajectory driving a scenario's rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum TruthSpec {
    /// The measured variable holds one value (the case study's cruise).
    Constant(f64),
    /// Linear drift: `start + rate_per_round · round`.
    Ramp {
        /// Value at round 0.
        start: f64,
        /// Per-round increment.
        rate_per_round: f64,
    },
}

impl TruthSpec {
    /// The ground truth at a round index.
    pub fn at(&self, round: u64) -> f64 {
        match *self {
            TruthSpec::Constant(v) => v,
            TruthSpec::Ramp {
                start,
                rate_per_round,
            } => start + rate_per_round * round as f64,
        }
    }
}

/// A platoon extension of a closed-loop scenario: how many vehicles and
/// the initial spacing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatoonSpec {
    /// Number of vehicles (leader first).
    pub size: usize,
    /// Initial inter-vehicle gap in miles.
    pub gap_miles: f64,
}

/// Closed-loop execution: drive a LandShark (or a platoon of them)
/// through the vehicle control loop instead of an open-loop
/// [`FusionPipeline`](crate::FusionPipeline).
///
/// The scenario's schedule, fault assumption `f`, fuser, detector,
/// attacker, rounds and seed all carry over; the ground truth is the
/// vehicle's *actual speed* (so [`TruthSpec`] is ignored), and the
/// summary gains the supervisor's Table II columns
/// ([`SupervisorSummary`](crate::metrics::SupervisorSummary)).
///
/// Closed-loop scenarios are restricted to what the vehicle supports:
/// the LandShark suite, no fault injection, Marzullo or Historical
/// fusion, and phantom-optimal attack strategies (see
/// [`Scenario::landshark_config`] for the exact panics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedLoopSpec {
    /// Target speed `v` in mph.
    pub target_speed: f64,
    /// Upper envelope half-width `δ1`.
    pub delta_up: f64,
    /// Lower envelope half-width `δ2`.
    pub delta_down: f64,
    /// Run a platoon instead of a single vehicle.
    pub platoon: Option<PlatoonSpec>,
}

impl ClosedLoopSpec {
    /// The case study's envelope around a target speed:
    /// `δ1 = δ2 = 0.5` mph, single vehicle.
    pub fn new(target_speed: f64) -> Self {
        Self {
            target_speed,
            delta_up: 0.5,
            delta_down: 0.5,
            platoon: None,
        }
    }

    /// Sets the envelope half-widths (builder style).
    #[must_use]
    pub fn with_deltas(mut self, delta_up: f64, delta_down: f64) -> Self {
        self.delta_up = delta_up;
        self.delta_down = delta_down;
        self
    }

    /// Runs a platoon of `size` vehicles spaced `gap_miles` apart
    /// (builder style).
    #[must_use]
    pub fn with_platoon(mut self, size: usize, gap_miles: f64) -> Self {
        self.platoon = Some(PlatoonSpec { size, gap_miles });
        self
    }
}

/// A complete, declarative experiment description.
///
/// # Example
///
/// ```
/// use arsf_core::scenario::{FuserSpec, Scenario, SuiteSpec};
/// use arsf_core::ScenarioRunner;
///
/// let scenario = Scenario::new("bi-demo", SuiteSpec::Landshark)
///     .with_fuser(FuserSpec::BrooksIyengar)
///     .with_rounds(50);
/// let summary = ScenarioRunner::new(&scenario).run();
/// assert_eq!(summary.fuser, "brooks-iyengar");
/// assert_eq!(summary.rounds, 50);
/// assert_eq!(summary.fusion_failures, 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Registry / report name.
    pub name: String,
    /// The sensor suite.
    pub suite: SuiteSpec,
    /// Fault models attached to sensors before the run, as
    /// `(sensor index, fault)` pairs.
    pub faults: Vec<(usize, FaultModel)>,
    /// The attacker model.
    pub attacker: AttackerSpec,
    /// The communication schedule.
    pub schedule: SchedulePolicy,
    /// The fusion fault assumption `f`.
    pub f: usize,
    /// The fusion algorithm.
    pub fuser: FuserSpec,
    /// The detector.
    pub detector: DetectionMode,
    /// The ground-truth trajectory.
    pub truth: TruthSpec,
    /// Rounds per run.
    pub rounds: u64,
    /// RNG seed (runs are deterministic given the scenario).
    pub seed: u64,
    /// Closed-loop execution: when set, the runner drives a
    /// [`LandShark`](crate::closed_loop::landshark::LandShark) (or a
    /// [`Platoon`](crate::closed_loop::platoon::Platoon)) instead of an
    /// open-loop pipeline.
    pub closed_loop: Option<ClosedLoopSpec>,
}

impl Scenario {
    /// A scenario with the paper's defaults: `f = 1`, Ascending schedule,
    /// Marzullo fusion, immediate detection, constant truth 10.0,
    /// 1000 rounds, a fixed seed, no faults, no attacker.
    pub fn new(name: impl Into<String>, suite: SuiteSpec) -> Self {
        Self {
            name: name.into(),
            suite,
            faults: Vec::new(),
            attacker: AttackerSpec::None,
            schedule: SchedulePolicy::Ascending,
            f: 1,
            fuser: FuserSpec::Marzullo,
            detector: DetectionMode::Immediate,
            truth: TruthSpec::Constant(10.0),
            rounds: 1000,
            seed: 2014,
            closed_loop: None,
        }
    }

    /// Renames the scenario (builder style).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Attaches a fault model to a sensor (builder style).
    #[must_use]
    pub fn with_fault(mut self, sensor: usize, fault: FaultModel) -> Self {
        self.faults.push((sensor, fault));
        self
    }

    /// Sets the attacker (builder style).
    #[must_use]
    pub fn with_attacker(mut self, attacker: AttackerSpec) -> Self {
        self.attacker = attacker;
        self
    }

    /// Sets the schedule (builder style).
    #[must_use]
    pub fn with_schedule(mut self, schedule: SchedulePolicy) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the fault assumption `f` (builder style).
    #[must_use]
    pub fn with_f(mut self, f: usize) -> Self {
        self.f = f;
        self
    }

    /// Sets the fusion algorithm (builder style).
    #[must_use]
    pub fn with_fuser(mut self, fuser: FuserSpec) -> Self {
        self.fuser = fuser;
        self
    }

    /// Sets the detector (builder style).
    #[must_use]
    pub fn with_detector(mut self, detector: DetectionMode) -> Self {
        self.detector = detector;
        self
    }

    /// Sets the truth trajectory (builder style).
    #[must_use]
    pub fn with_truth(mut self, truth: TruthSpec) -> Self {
        self.truth = truth;
        self
    }

    /// Sets the round count (builder style).
    #[must_use]
    pub fn with_rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the RNG seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switches the scenario to closed-loop vehicle execution (builder
    /// style).
    #[must_use]
    pub fn with_closed_loop(mut self, spec: ClosedLoopSpec) -> Self {
        self.closed_loop = Some(spec);
        self
    }

    /// Materialises the scenario into an engine over boxed trait objects.
    ///
    /// # Panics
    ///
    /// Panics if a fault or compromised-sensor index is out of range for
    /// the suite.
    pub fn build_pipeline(&self) -> FusionPipeline<Box<dyn Fuser<f64>>> {
        let mut suite = self.suite.build();
        for (sensor, fault) in &self.faults {
            let sensors = suite.sensors_mut();
            assert!(*sensor < sensors.len(), "fault sensor index out of range");
            sensors[*sensor] = sensors[*sensor].clone().with_fault(*fault);
        }
        let config =
            PipelineConfig::new(self.f, self.schedule.clone()).with_detection(self.detector);
        let builder = FusionPipeline::builder(suite)
            .config(config)
            .fuser(self.fuser.build(self.f));
        match &self.attacker {
            AttackerSpec::None => builder.build(),
            AttackerSpec::Fixed { sensors, strategy } => builder
                .attacker(
                    AttackerConfig::new(sensors.iter().copied(), self.f),
                    strategy.build(),
                )
                .build(),
            // Installed with an empty compromised set: the runner swaps
            // the attacker config to the round's drawn sensor before
            // every round (see `ScenarioRunner::step_into`).
            AttackerSpec::RandomEachRound => builder
                .attacker(
                    AttackerConfig::new([], self.f),
                    StrategySpec::PhantomOptimal.build(),
                )
                .build(),
        }
    }

    /// Maps a closed-loop scenario onto the vehicle configuration the
    /// runner materialises into a
    /// [`LandShark`](crate::closed_loop::landshark::LandShark).
    ///
    /// # Panics
    ///
    /// Panics when the scenario is not closed-loop, or combines
    /// closed-loop execution with anything the vehicle does not support:
    /// a non-LandShark suite, fault injection, a fuser other than
    /// [`FuserSpec::Marzullo`] / [`FuserSpec::Historical`], or a fixed
    /// attacker running a strategy other than
    /// [`StrategySpec::PhantomOptimal`].
    pub fn landshark_config(&self) -> LandSharkConfig {
        let spec = self
            .closed_loop
            .as_ref()
            .expect("landshark_config needs a closed-loop scenario");
        assert_eq!(
            self.suite,
            SuiteSpec::Landshark,
            "closed-loop scenarios run the LandShark suite"
        );
        assert!(
            self.faults.is_empty(),
            "closed-loop scenarios do not support fault injection"
        );
        let (history, dt) = match self.fuser {
            FuserSpec::Marzullo => (None, 0.1),
            FuserSpec::Historical { max_rate, dt } => (Some(DynamicsBound::new(max_rate)), dt),
            ref other => panic!(
                "closed-loop scenarios fuse with marzullo or historical, not {}",
                other.name()
            ),
        };
        let attack = match &self.attacker {
            AttackerSpec::None => AttackSelection::None,
            AttackerSpec::Fixed { sensors, strategy } => {
                assert_eq!(
                    *strategy,
                    StrategySpec::PhantomOptimal,
                    "the vehicle's fixed attacker runs phantom-optimal"
                );
                AttackSelection::Fixed(sensors.clone())
            }
            AttackerSpec::RandomEachRound => AttackSelection::RandomEachRound,
        };
        let mut config = LandSharkConfig::new(spec.target_speed, self.schedule.clone());
        config.delta_up = spec.delta_up;
        config.delta_down = spec.delta_down;
        config.f = self.f;
        config.dt = dt;
        config.attack = attack;
        config.detection = self.detector;
        config.history = history;
        config
    }
}

/// The built-in named presets: the case study under each schedule, the
/// detection ablations, and algorithm-comparison scenarios.
///
/// Names are unique; [`find`] looks one up.
pub fn registry() -> Vec<Scenario> {
    let attacked = |schedule: SchedulePolicy| {
        Scenario::new(
            format!("landshark-{}-attacked", schedule.name()),
            SuiteSpec::Landshark,
        )
        .with_schedule(schedule)
        .with_attacker(AttackerSpec::Fixed {
            sensors: vec![0],
            strategy: StrategySpec::PhantomOptimal,
        })
    };
    vec![
        Scenario::new("landshark-honest", SuiteSpec::Landshark),
        attacked(SchedulePolicy::Ascending),
        attacked(SchedulePolicy::Descending),
        attacked(SchedulePolicy::Random),
        attacked(SchedulePolicy::Descending)
            .named("landshark-descending-historical")
            .with_fuser(FuserSpec::Historical {
                max_rate: 3.5,
                dt: 0.1,
            }),
        attacked(SchedulePolicy::Descending)
            .named("landshark-descending-brooks-iyengar")
            .with_fuser(FuserSpec::BrooksIyengar),
        attacked(SchedulePolicy::Descending)
            .named("ablation-detection-off")
            .with_detector(DetectionMode::Off),
        Scenario::new("ablation-windowed-gps-fault", SuiteSpec::Landshark)
            .with_fault(
                2,
                FaultModel::new(arsf_sensor::FaultKind::Bias { offset: 3.0 }, 0.2),
            )
            .with_detector(DetectionMode::Windowed {
                window: 20,
                tolerance: 6,
            }),
        Scenario::new("table1-n3", SuiteSpec::Widths(vec![5.0, 11.0, 17.0]))
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            })
            .with_truth(TruthSpec::Constant(0.0)),
        Scenario::new("platoon-ramp", SuiteSpec::Landshark)
            .with_truth(TruthSpec::Ramp {
                start: 10.0,
                rate_per_round: 0.002,
            })
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::GreedyHigh,
            }),
        // Sweep-era presets: the platoon family and the stealthy-attacker
        // × windowed-detector design space the grid sweeps explore.
        Scenario::new("platoon-stealthy-windowed", SuiteSpec::Landshark)
            .with_truth(TruthSpec::Ramp {
                start: 10.0,
                rate_per_round: 0.002,
            })
            .with_schedule(SchedulePolicy::Descending)
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            })
            .with_detector(DetectionMode::Windowed {
                window: 20,
                tolerance: 6,
            }),
        Scenario::new("platoon-greedy-low", SuiteSpec::Landshark)
            .with_truth(TruthSpec::Ramp {
                start: 10.0,
                rate_per_round: -0.002,
            })
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::GreedyLow,
            }),
        Scenario::new("platoon-historical-windowed", SuiteSpec::Landshark)
            .with_truth(TruthSpec::Ramp {
                start: 10.0,
                rate_per_round: 0.002,
            })
            .with_schedule(SchedulePolicy::Descending)
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            })
            .with_fuser(FuserSpec::Historical {
                max_rate: 3.5,
                dt: 0.1,
            })
            .with_detector(DetectionMode::Windowed {
                window: 20,
                tolerance: 6,
            }),
        Scenario::new("stealthy-windowed-strict", SuiteSpec::Landshark)
            .with_schedule(SchedulePolicy::Descending)
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            })
            .with_detector(DetectionMode::Windowed {
                window: 10,
                tolerance: 2,
            }),
        Scenario::new("stealthy-windowed-lenient", SuiteSpec::Landshark)
            .with_schedule(SchedulePolicy::Descending)
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            })
            .with_detector(DetectionMode::Windowed {
                window: 30,
                tolerance: 10,
            }),
        Scenario::new("greedy-high-windowed", SuiteSpec::Landshark)
            .with_schedule(SchedulePolicy::Descending)
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::GreedyHigh,
            })
            .with_detector(DetectionMode::Windowed {
                window: 10,
                tolerance: 3,
            }),
        Scenario::new(
            "table1-n5-stealthy",
            SuiteSpec::Widths(vec![5.0, 5.0, 5.0, 5.0, 20.0]),
        )
        .with_f(2)
        .with_attacker(AttackerSpec::Fixed {
            sensors: vec![0],
            strategy: StrategySpec::PhantomOptimal,
        })
        .with_truth(TruthSpec::Constant(0.0)),
        // Closed-loop presets: Table II's three schedule cells (one
        // uniformly-random compromised sensor per round, LandShark at
        // 10 mph inside the [9.5, 10.5] envelope) and the platoon under
        // the historical-fusion defence.
        table2_preset(SchedulePolicy::Ascending),
        table2_preset(SchedulePolicy::Descending),
        table2_preset(SchedulePolicy::Random),
        Scenario::new("platoon-historical", SuiteSpec::Landshark)
            .with_schedule(SchedulePolicy::Descending)
            .with_attacker(AttackerSpec::RandomEachRound)
            .with_fuser(FuserSpec::Historical {
                max_rate: 3.5,
                dt: 0.1,
            })
            .with_closed_loop(ClosedLoopSpec::new(10.0).with_platoon(3, 0.01)),
    ]
}

fn table2_preset(schedule: SchedulePolicy) -> Scenario {
    Scenario::new(format!("table2-{}", schedule.name()), SuiteSpec::Landshark)
        .with_schedule(schedule)
        .with_attacker(AttackerSpec::RandomEachRound)
        .with_closed_loop(ClosedLoopSpec::new(10.0))
}

/// Looks a preset up by name.
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let presets = registry();
        let mut names: Vec<&str> = presets.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate preset names");
        for preset in &presets {
            let found = find(&preset.name).expect("every preset resolves");
            assert_eq!(&found, preset, "{} round-trips", preset.name);
        }
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn suite_specs_build_correct_sizes() {
        assert_eq!(
            SuiteSpec::Landshark.build().len(),
            SuiteSpec::Landshark.len()
        );
        let widths = SuiteSpec::Widths(vec![1.0, 2.0]);
        assert_eq!(widths.build().len(), 2);
        assert!(!widths.is_empty());
    }

    #[test]
    fn fuser_specs_build_matching_names() {
        let specs = [
            FuserSpec::Marzullo,
            FuserSpec::BrooksIyengar,
            FuserSpec::Intersection,
            FuserSpec::Hull,
            FuserSpec::InverseVariance,
            FuserSpec::MidpointMedian,
            FuserSpec::Historical {
                max_rate: 1.0,
                dt: 0.1,
            },
        ];
        for spec in specs {
            assert_eq!(spec.build(1).name(), spec.name());
        }
    }

    #[test]
    fn truth_trajectories_evaluate() {
        assert_eq!(TruthSpec::Constant(10.0).at(99), 10.0);
        let ramp = TruthSpec::Ramp {
            start: 1.0,
            rate_per_round: 0.5,
        };
        assert_eq!(ramp.at(0), 1.0);
        assert_eq!(ramp.at(4), 3.0);
    }

    #[test]
    fn build_pipeline_applies_faults_and_attacker() {
        let scenario = Scenario::new("t", SuiteSpec::Landshark)
            .with_fault(2, FaultModel::new(arsf_sensor::FaultKind::Silent, 1.0))
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::Truthful,
            });
        let mut pipeline = scenario.build_pipeline();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let out = pipeline.run_round(10.0, &mut rng);
        // The silenced GPS never transmits.
        assert_eq!(out.transmitted.len(), 3);
        assert!(out.transmitted.iter().all(|(s, _)| *s != 2));
    }

    #[test]
    #[should_panic(expected = "fault sensor index out of range")]
    fn out_of_range_fault_panics() {
        let _ = Scenario::new("t", SuiteSpec::Widths(vec![1.0]))
            .with_fault(5, FaultModel::new(arsf_sensor::FaultKind::Silent, 1.0))
            .build_pipeline();
    }

    #[test]
    fn report_labels_are_compact_and_csv_safe() {
        assert_eq!(SuiteSpec::Landshark.label(), "landshark");
        assert_eq!(
            SuiteSpec::Widths(vec![5.0, 11.0, 17.0]).label(),
            "widths[5|11|17]"
        );
        assert_eq!(AttackerSpec::None.label(), "honest");
        assert_eq!(
            AttackerSpec::Fixed {
                sensors: vec![0, 2],
                strategy: StrategySpec::GreedyLow,
            }
            .label(),
            "greedy-low@0|2"
        );
        // Strategy spec names mirror the built strategies' report names.
        for spec in [
            StrategySpec::PhantomOptimal,
            StrategySpec::GreedyHigh,
            StrategySpec::GreedyLow,
            StrategySpec::Truthful,
        ] {
            assert_eq!(spec.build().name(), spec.name());
        }
    }
}
