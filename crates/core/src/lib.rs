//! The attack-resilient sensor-fusion pipeline.
//!
//! This crate assembles the substrates ([`arsf_sensor`], [`arsf_schedule`],
//! [`arsf_attack`], [`arsf_fusion`], [`arsf_detect`], [`arsf_bus`]) into
//! the system the [DATE 2014 paper][paper] describes: `n` sensors measure
//! one physical variable, broadcast abstract intervals over a shared bus
//! in a scheduled order, an attacker forges the intervals of the sensors
//! she controls using everything already on the wire, and the controller
//! fuses with Marzullo's algorithm and runs attack detection.
//!
//! * [`FusionPipeline`] — the round engine: sample → schedule → (attack)
//!   → fuse → detect, one call per control period,
//! * [`PipelineConfig`]/[`DetectionMode`] — validated configuration,
//! * [`RoundOutcome`] — everything observable about one round,
//! * [`metrics`] — violation counters and width statistics used by the
//!   experiment harnesses,
//! * [`transport`] — the same round executed over the `arsf-bus`
//!   broadcast substrate with sensor, attacker and controller *nodes*
//!   (used to show transport equivalence and in the bus demos).
//!
//! # Example
//!
//! ```
//! use arsf_attack::{strategies::PhantomOptimal, AttackerConfig};
//! use arsf_core::{FusionPipeline, PipelineConfig};
//! use arsf_schedule::SchedulePolicy;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // LandShark suite under Ascending schedule, encoder 0 compromised.
//! let mut pipeline = FusionPipeline::builder(arsf_sensor::suite::landshark())
//!     .config(PipelineConfig::new(1, SchedulePolicy::Ascending))
//!     .attacker(AttackerConfig::new([0], 1), Box::new(PhantomOptimal::new()))
//!     .build();
//! let mut rng = StdRng::seed_from_u64(42);
//! let outcome = pipeline.run_round(10.0, &mut rng);
//! let fused = outcome.fusion.expect("sensors agree");
//! assert!(fused.contains(10.0), "fa <= f keeps the truth inside");
//! assert!(outcome.flagged.is_empty(), "the attacker stays stealthy");
//! ```
//!
//! [paper]: https://doi.org/10.7873/DATE.2014.067

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod metrics;
mod pipeline;
pub mod transport;

pub use config::{DetectionMode, PipelineConfig};
pub use pipeline::{FusionPipeline, PipelineBuilder, RoundOutcome};
