//! The attack-resilient sensor-fusion engine.
//!
//! This crate assembles the substrates ([`arsf_sensor`], [`arsf_schedule`],
//! [`arsf_attack`], [`arsf_fusion`], [`arsf_detect`], [`arsf_bus`]) into
//! the system the [DATE 2014 paper][paper] describes: `n` sensors measure
//! one physical variable, broadcast abstract intervals over a shared bus
//! in a scheduled order, an attacker forges the intervals of the sensors
//! she controls using everything already on the wire, and the controller
//! fuses and runs attack detection.
//!
//! The engine is **pluggable** along its two algorithmic axes:
//!
//! * [`FusionPipeline`] — the round engine (sample → schedule → (attack)
//!   → fuse → detect), generic over any [`Fuser`](arsf_fusion::Fuser)
//!   (Marzullo, Brooks–Iyengar, historical, weighted, …) and driving any
//!   [`Detector`](arsf_detect::Detector) (off, immediate, windowed, …),
//! * [`PipelineConfig`]/[`DetectionMode`] — validated configuration;
//!   the detection mode is the declarative name of the default detector,
//! * [`RoundOutcome`] — everything observable about one round, designed
//!   as a reusable buffer ([`FusionPipeline::run_round_into`]),
//! * [`scenario`] — declarative [`Scenario`] descriptions (suite, faults,
//!   attacker, schedule, fuser, detector, truth, rounds, seed) and a
//!   registry of named presets,
//! * [`ScenarioRunner`] — batch execution of scenarios into preallocated
//!   outcome buffers, with [`BatchSummary`] aggregation,
//! * [`sweep`] — cartesian scenario grids ([`SweepGrid`]) executed
//!   serially or across scoped worker threads ([`ParallelSweeper`]) into
//!   deterministic, grid-ordered [`SweepReport`]s with CSV/JSON emission;
//!   [`sweep::store`] persists reports content-addressed by their grid
//!   definition and [`sweep::diff`] compares two stored reports cell by
//!   cell under per-column tolerances (the regression-baseline harness),
//! * [`metrics`] — violation counters and width statistics used by the
//!   experiment harnesses,
//! * [`transport`] — the same round executed over the `arsf-bus`
//!   broadcast substrate with sensor, attacker and controller *nodes*
//!   (used to show transport equivalence and in the bus demos).
//!
//! # Example
//!
//! ```
//! use arsf_attack::{strategies::PhantomOptimal, AttackerConfig};
//! use arsf_core::{FusionPipeline, PipelineConfig};
//! use arsf_schedule::SchedulePolicy;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // LandShark suite under Ascending schedule, encoder 0 compromised.
//! let mut pipeline = FusionPipeline::builder(arsf_sensor::suite::landshark())
//!     .config(PipelineConfig::new(1, SchedulePolicy::Ascending))
//!     .attacker(AttackerConfig::new([0], 1), Box::new(PhantomOptimal::new()))
//!     .build();
//! let mut rng = StdRng::seed_from_u64(42);
//! let outcome = pipeline.run_round(10.0, &mut rng);
//! let fused = outcome.fusion.expect("sensors agree");
//! assert!(fused.contains(10.0), "fa <= f keeps the truth inside");
//! assert!(outcome.flagged.is_empty(), "the attacker stays stealthy");
//! ```
//!
//! Swapping the fusion algorithm (or the detector) is one builder call —
//! every algorithm runs through the same engine:
//!
//! ```
//! use arsf_core::{FusionPipeline, PipelineConfig};
//! use arsf_fusion::BrooksIyengarFuser;
//! use arsf_schedule::SchedulePolicy;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut pipeline = FusionPipeline::builder(arsf_sensor::suite::landshark())
//!     .config(PipelineConfig::new(1, SchedulePolicy::Ascending))
//!     .fuser(BrooksIyengarFuser::new(1))
//!     .build();
//! let mut rng = StdRng::seed_from_u64(42);
//! assert!(pipeline.run_round(10.0, &mut rng).fusion.is_ok());
//! ```
//!
//! [paper]: https://doi.org/10.7873/DATE.2014.067

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closed_loop;
mod config;
pub mod metrics;
mod pipeline;
mod runner;
pub mod scenario;
pub mod sweep;
pub mod transport;

pub use config::{DetectionMode, PipelineConfig};
pub use pipeline::{FusionPipeline, PipelineBuilder, RoundOutcome};
pub use runner::{run_all, BatchSummary, ScenarioRunner};
pub use scenario::Scenario;
pub use sweep::{ParallelSweeper, SweepGrid, SweepReport};
