//! End-to-end property tests: the paper's guarantees fuzzed across random
//! sensor suites, schedules, compromised sets and attack strategies.

use arsf_attack::strategies::{GreedyExtreme, PhantomOptimal, Side};
use arsf_attack::{AttackStrategy, AttackerConfig, Truthful};
use arsf_core::{FusionPipeline, PipelineConfig};
use arsf_schedule::SchedulePolicy;
use arsf_sensor::{NoiseModel, SensorSpec, SensorSuite};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random suite: 3..=6 sensors with radii in [0.1, 3.0].
fn suite_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1u32..30, 3..=6)
        .prop_map(|radii| radii.into_iter().map(|r| r as f64 * 0.1).collect())
}

fn build_suite(radii: &[f64]) -> SensorSuite {
    SensorSuite::from_specs(
        radii
            .iter()
            .enumerate()
            .map(|(i, &r)| SensorSpec::new(format!("s{i}"), r)),
        NoiseModel::Uniform,
    )
}

fn schedule_for(seed: u8) -> SchedulePolicy {
    match seed % 3 {
        0 => SchedulePolicy::Ascending,
        1 => SchedulePolicy::Descending,
        _ => SchedulePolicy::Random,
    }
}

fn strategy_for(seed: u8) -> Box<dyn AttackStrategy> {
    match seed % 3 {
        0 => Box::new(PhantomOptimal::new()),
        1 => Box::new(GreedyExtreme::new(Side::High)),
        _ => Box::new(Truthful),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn honest_rounds_always_keep_truth_and_never_flag(
        radii in suite_strategy(),
        schedule_seed in 0u8..3,
        truth in -50.0f64..50.0,
        rng_seed in 0u64..1000,
    ) {
        let n = radii.len();
        let f = n.div_ceil(2) - 1;
        let mut pipeline = FusionPipeline::builder(build_suite(&radii))
            .config(PipelineConfig::new(f, schedule_for(schedule_seed)))
            .build();
        let mut rng = StdRng::seed_from_u64(rng_seed);
        for _ in 0..5 {
            let out = pipeline.run_round(truth, &mut rng);
            let fused = out.fusion.expect("all-correct round fuses");
            prop_assert!(fused.contains(truth));
            prop_assert!(out.flagged.is_empty());
        }
    }

    #[test]
    fn attacked_rounds_keep_truth_when_fa_within_f(
        radii in suite_strategy(),
        schedule_seed in 0u8..3,
        strategy_seed in 0u8..3,
        victim_seed in 0usize..6,
        rng_seed in 0u64..1000,
    ) {
        let n = radii.len();
        let f = n.div_ceil(2) - 1;
        prop_assume!(f >= 1);
        let victim = victim_seed % n;
        let mut pipeline = FusionPipeline::builder(build_suite(&radii))
            .config(PipelineConfig::new(f, schedule_for(schedule_seed)))
            .attacker(
                AttackerConfig::new([victim], f),
                strategy_for(strategy_seed),
            )
            .build();
        let mut rng = StdRng::seed_from_u64(rng_seed);
        for _ in 0..5 {
            let out = pipeline.run_round(10.0, &mut rng);
            // The paper's core guarantee: fa <= f keeps the truth in the
            // fusion interval regardless of what the attacker sends.
            let fused = out.fusion.expect("fa <= f always fuses");
            prop_assert!(
                fused.contains(10.0),
                "strategy {strategy_seed} on sensor {victim} pushed the truth out"
            );
        }
    }

    #[test]
    fn forged_widths_always_match_public_widths(
        radii in suite_strategy(),
        schedule_seed in 0u8..3,
        strategy_seed in 0u8..3,
        rng_seed in 0u64..1000,
    ) {
        let n = radii.len();
        let f = n.div_ceil(2) - 1;
        prop_assume!(f >= 1);
        let mut pipeline = FusionPipeline::builder(build_suite(&radii))
            .config(PipelineConfig::new(f, schedule_for(schedule_seed)))
            .attacker(AttackerConfig::new([0], f), strategy_for(strategy_seed))
            .build();
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let out = pipeline.run_round(0.0, &mut rng);
        for (sensor, interval) in &out.transmitted {
            prop_assert!(
                (interval.width() - radii[*sensor] * 2.0).abs() < 1e-9,
                "sensor {sensor} transmitted width {} but publishes {}",
                interval.width(),
                radii[*sensor] * 2.0
            );
        }
    }

    #[test]
    fn stealthy_strategies_are_never_flagged(
        radii in suite_strategy(),
        schedule_seed in 0u8..3,
        victim_seed in 0usize..6,
        rng_seed in 0u64..1000,
    ) {
        // PhantomOptimal guarantees stealth by construction; fuzz it.
        let n = radii.len();
        let f = n.div_ceil(2) - 1;
        prop_assume!(f >= 1);
        let victim = victim_seed % n;
        let mut pipeline = FusionPipeline::builder(build_suite(&radii))
            .config(PipelineConfig::new(f, schedule_for(schedule_seed)))
            .attacker(
                AttackerConfig::new([victim], f),
                Box::new(PhantomOptimal::new()),
            )
            .build();
        let mut rng = StdRng::seed_from_u64(rng_seed);
        for _ in 0..5 {
            let out = pipeline.run_round(5.0, &mut rng);
            prop_assert!(
                out.flagged.is_empty(),
                "phantom-optimal flagged on {:?} (victim {victim})",
                out.order
            );
        }
    }
}
