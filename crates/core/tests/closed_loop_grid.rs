//! Property test for the un-panicked closed-loop scenario space: any
//! closed-loop [`Scenario`] drawn over fusers × attackers (any strategy)
//! × fault sets × schedules × platoon shapes passes
//! [`Scenario::validate`], builds, and runs 50 rounds without panicking —
//! the combinations that used to be rejected by
//! `Scenario::landshark_config`'s asserts.

use arsf_core::scenario::{
    AttackerSpec, ClosedLoopSpec, FuserSpec, Scenario, StrategySpec, SuiteSpec,
};
use arsf_core::{DetectionMode, ScenarioRunner};
use arsf_schedule::SchedulePolicy;
use arsf_sensor::{FaultKind, FaultModel};
use proptest::prelude::*;

fn fuser_pool(i: usize) -> FuserSpec {
    match i % 7 {
        0 => FuserSpec::Marzullo,
        1 => FuserSpec::BrooksIyengar,
        2 => FuserSpec::Intersection,
        3 => FuserSpec::Hull,
        4 => FuserSpec::InverseVariance,
        5 => FuserSpec::MidpointMedian,
        _ => FuserSpec::Historical {
            max_rate: 3.5,
            dt: 0.1,
        },
    }
}

fn attacker_pool(i: usize) -> AttackerSpec {
    let fixed = |sensors: Vec<usize>, strategy| AttackerSpec::Fixed { sensors, strategy };
    match i % 6 {
        0 => AttackerSpec::None,
        1 => fixed(vec![0], StrategySpec::PhantomOptimal),
        2 => fixed(vec![0], StrategySpec::GreedyHigh),
        3 => fixed(vec![2], StrategySpec::GreedyLow),
        4 => fixed(vec![1], StrategySpec::Truthful),
        _ => AttackerSpec::RandomEachRound,
    }
}

fn fault_set_pool(i: usize) -> Vec<(usize, FaultModel)> {
    match i % 4 {
        0 => vec![],
        1 => vec![(2, FaultModel::new(FaultKind::Bias { offset: 3.0 }, 0.25))],
        2 => vec![(3, FaultModel::new(FaultKind::Silent, 0.5))],
        _ => vec![
            (1, FaultModel::new(FaultKind::Scale { factor: 1.5 }, 0.4)),
            (3, FaultModel::new(FaultKind::StuckAt { value: 12.0 }, 0.3)),
        ],
    }
}

fn schedule_pool(i: usize) -> SchedulePolicy {
    match i % 3 {
        0 => SchedulePolicy::Ascending,
        1 => SchedulePolicy::Descending,
        _ => SchedulePolicy::Random,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_closed_loop_combination_builds_and_runs_50_rounds(
        fuser in 0usize..7,
        attacker in 0usize..6,
        faults in 0usize..4,
        schedule in 0usize..3,
        platoon in 0usize..2,
        windowed in 0usize..2,
        seed in 0u64..1000,
    ) {
        let mut spec = ClosedLoopSpec::new(10.0);
        if platoon == 1 {
            spec = spec.with_platoon(3, 0.01);
        }
        let detector = if windowed == 1 {
            DetectionMode::Windowed { window: 10, tolerance: 3 }
        } else {
            DetectionMode::Immediate
        };
        let mut scenario = Scenario::new("cl-grid", SuiteSpec::Landshark)
            .with_fuser(fuser_pool(fuser))
            .with_attacker(attacker_pool(attacker))
            .with_schedule(schedule_pool(schedule))
            .with_detector(detector)
            .with_seed(seed)
            .with_rounds(50)
            .with_closed_loop(spec);
        for (sensor, fault) in fault_set_pool(faults) {
            scenario = scenario.with_fault(sensor, fault);
        }

        prop_assert!(
            scenario.validate().is_ok(),
            "every drawn combination is supported"
        );
        let summary = ScenarioRunner::try_new(&scenario)
            .expect("validated scenarios build")
            .run();
        prop_assert_eq!(summary.rounds, 50);
        prop_assert!(summary.supervisor.is_some(), "closed-loop summary");
        if platoon == 1 {
            prop_assert_eq!(summary.vehicles.len(), 3, "per-vehicle aggregates");
            for vehicle in &summary.vehicles {
                prop_assert_eq!(
                    vehicle.widths.count() + vehicle.fusion_failures,
                    50,
                    "every control period accounted for"
                );
            }
        } else {
            prop_assert!(summary.vehicles.is_empty());
        }
    }
}
