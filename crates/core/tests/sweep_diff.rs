//! Property tests for the regression-baseline subsystem: a report never
//! drifts from itself (open- and closed-loop, through the JSON round
//! trip), a single perturbed cell is flagged with the right grid index
//! and column, and the content address is invariant under
//! axis-irrelevant formatting but moves when any axis changes.

use arsf_core::scenario::{
    AttackerSpec, ClosedLoopSpec, FuserSpec, Scenario, StrategySpec, SuiteSpec,
};
use arsf_core::sweep::diff::{diff, DiffConfig, Drift, Tolerance};
use arsf_core::sweep::store::{grid_address, Baseline};
use arsf_core::sweep::SweepGrid;
use arsf_core::DetectionMode;
use arsf_schedule::SchedulePolicy;
use arsf_sensor::{FaultKind, FaultModel};
use proptest::prelude::*;

fn schedule_pool(i: usize) -> SchedulePolicy {
    match i % 3 {
        0 => SchedulePolicy::Ascending,
        1 => SchedulePolicy::Descending,
        _ => SchedulePolicy::Random,
    }
}

fn fuser_pool(i: usize) -> FuserSpec {
    match i % 4 {
        0 => FuserSpec::Marzullo,
        1 => FuserSpec::BrooksIyengar,
        2 => FuserSpec::Hull,
        _ => FuserSpec::Historical {
            max_rate: 3.5,
            dt: 0.1,
        },
    }
}

fn fault_set_pool(i: usize) -> Vec<(usize, FaultModel)> {
    match i % 3 {
        0 => vec![],
        1 => vec![(2, FaultModel::new(FaultKind::Bias { offset: 3.0 }, 0.25))],
        _ => vec![(1, FaultModel::new(FaultKind::Silent, 0.5))],
    }
}

fn attacker_pool(i: usize) -> AttackerSpec {
    match i % 3 {
        0 => AttackerSpec::None,
        1 => AttackerSpec::Fixed {
            sensors: vec![0],
            strategy: StrategySpec::PhantomOptimal,
        },
        _ => AttackerSpec::RandomEachRound,
    }
}

fn open_grid(
    name: &str,
    fusers: &[usize],
    fault_sets: &[usize],
    attackers: &[usize],
    schedule: usize,
    seeds: Vec<u64>,
    rounds: u64,
) -> SweepGrid {
    let base = Scenario::new(name, SuiteSpec::Landshark).with_rounds(rounds);
    SweepGrid::new(base)
        .fusers(fusers.iter().map(|&i| fuser_pool(i)))
        .fault_sets(fault_sets.iter().map(|&i| fault_set_pool(i)))
        .attackers(attackers.iter().map(|&i| attacker_pool(i)))
        .schedules([schedule_pool(schedule)])
        .seeds(seeds)
}

fn closed_grid(
    name: &str,
    platoon: bool,
    schedule: usize,
    seeds: Vec<u64>,
    rounds: u64,
) -> SweepGrid {
    let mut spec = ClosedLoopSpec::new(10.0);
    if platoon {
        spec = spec.with_platoon(2, 0.01);
    }
    let base = Scenario::new(name, SuiteSpec::Landshark)
        .with_attacker(AttackerSpec::RandomEachRound)
        .with_rounds(rounds)
        .with_closed_loop(spec);
    SweepGrid::new(base)
        .schedules([schedule_pool(schedule)])
        .seeds(seeds)
}

/// Records a grid and asserts the self-diff is empty, both directly and
/// after a JSON round trip.
fn assert_self_diff_empty(grid: &SweepGrid) -> Result<(), TestCaseError> {
    let baseline = Baseline::from_report(grid, &grid.run_serial());
    let direct = diff(&baseline, &baseline, &DiffConfig::default());
    prop_assert!(direct.is_empty(), "self-diff drifted: {}", direct.render());
    prop_assert_eq!(direct.cells_compared(), grid.len());
    let reloaded = Baseline::from_json(&baseline.to_json())
        .map_err(|e| TestCaseError::fail(format!("round trip failed: {e}")))?;
    let through_json = diff(&baseline, &reloaded, &DiffConfig::default());
    prop_assert!(
        through_json.is_empty(),
        "JSON round trip drifted: {}",
        through_json.render()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn open_loop_reports_never_drift_from_themselves(
        fusers in prop::collection::vec(0usize..4, 1..=2),
        fault_sets in prop::collection::vec(0usize..3, 1..=2),
        attackers in prop::collection::vec(0usize..3, 1..=2),
        schedule in 0usize..3,
        seeds in prop::collection::vec(0u64..1000, 1..=2),
        rounds in 3u64..10,
    ) {
        let grid = open_grid("prop", &fusers, &fault_sets, &attackers, schedule, seeds, rounds);
        assert_self_diff_empty(&grid)?;
    }

    #[test]
    fn closed_loop_reports_never_drift_from_themselves(
        platoon in 0usize..2,
        schedule in 0usize..3,
        seeds in prop::collection::vec(0u64..1000, 1..=2),
        rounds in 3u64..10,
    ) {
        let grid = closed_grid("prop-cl", platoon == 1, schedule, seeds, rounds);
        assert_self_diff_empty(&grid)?;
    }

    #[test]
    fn one_perturbed_cell_is_flagged_with_its_index_and_column(
        schedule in 0usize..3,
        seeds in prop::collection::vec(0u64..1000, 2..=3),
        rounds in 5u64..12,
        victim_selector in 0usize..1000,
        column_selector in 0usize..3,
        nudge in 0.5f64..10.0,
    ) {
        let grid = open_grid(
            "perturb",
            &[0, 1],
            &[0],
            &[1],
            schedule,
            seeds,
            rounds,
        );
        let baseline = Baseline::from_report(&grid, &grid.run_serial());
        let victim = victim_selector % baseline.rows.len();
        let column = ["mean_width", "max_width", "truth_loss_rate"][column_selector];
        let mut perturbed = baseline.clone();
        {
            let slot = perturbed.rows[victim]
                .metrics
                .iter_mut()
                .find(|(name, _)| name == column)
                .expect("metric exists");
            slot.1 = Some(slot.1.unwrap_or(0.0) + nudge);
        }
        // Under a tolerance smaller than the nudge the drift is flagged…
        let config = DiffConfig::default()
            .with_default(Tolerance::new(0.25, 0.0));
        let result = diff(&baseline, &perturbed, &config);
        prop_assert_eq!(result.len(), 1, "{}", result.render());
        let expected_cell = baseline.rows[victim].cell;
        match &result.drifts()[0] {
            Drift::Value { cell, column: col, baseline: b, current: c } => {
                prop_assert_eq!(*cell, expected_cell, "wrong grid index");
                prop_assert_eq!(col.as_str(), column, "wrong column");
                prop_assert!(c.unwrap() > b.unwrap_or(0.0), "direction preserved");
            }
            other => return Err(TestCaseError::fail(format!("expected a value drift, got {other:?}"))),
        }
        let rendered = result.render();
        prop_assert!(rendered.contains(&format!("cell {expected_cell} `{column}`")), "{}", rendered);
        // …and a tolerance beyond the nudge silences exactly it.
        let lax = DiffConfig::default().with_default(Tolerance::new(nudge + 0.5, 0.0));
        prop_assert!(diff(&baseline, &perturbed, &lax).is_empty());
    }

    #[test]
    fn content_address_ignores_names_but_tracks_axes(
        fusers in prop::collection::vec(0usize..4, 1..=2),
        schedule in 0usize..3,
        seeds in prop::collection::vec(0u64..1000, 1..=2),
        rounds in 3u64..10,
        name_a in 0usize..4,
        name_b in 0usize..4,
    ) {
        let names = ["grid", "renamed", "x", "a-much-longer-grid-name"];
        let (name_a, name_b) = (names[name_a], names[name_b]);
        let build = |name: &str| {
            open_grid(name, &fusers, &[0], &[1], schedule, seeds.clone(), rounds)
        };
        // Axis-irrelevant formatting: the base scenario's name.
        prop_assert_eq!(grid_address(&build(name_a)), grid_address(&build(name_b)));
        let address = grid_address(&build(name_a));
        // Any axis change moves the address.
        let more_seeds = build(name_a).seeds(seeds.iter().copied().chain([9999]));
        prop_assert_ne!(address.clone(), grid_address(&more_seeds));
        let other_rounds = open_grid(name_a, &fusers, &[0], &[1], schedule, seeds.clone(), rounds + 1);
        prop_assert_ne!(address.clone(), grid_address(&other_rounds));
        let other_schedule = build(name_a).schedules([schedule_pool(schedule + 1)]);
        prop_assert_ne!(address.clone(), grid_address(&other_schedule));
        let other_detector = build(name_a).detectors([DetectionMode::Off]);
        prop_assert_ne!(address.clone(), grid_address(&other_detector));
        let other_faults = build(name_a).fault_sets([fault_set_pool(1)]);
        prop_assert_ne!(address.clone(), grid_address(&other_faults));
    }
}
