//! Property test: every `SweepRow` renders its axis coordinates — the
//! cell index, suite, fault-set, attacker, schedule, rounds, seed and the
//! closed-loop supervisor columns — into both the CSV line and the JSON
//! object, byte-for-byte, for randomly-built grids in both execution
//! modes.

use arsf_core::scenario::{
    faults_label, AttackerSpec, ClosedLoopSpec, FuserSpec, Scenario, StrategySpec, SuiteSpec,
};
use arsf_core::sweep::{SweepGrid, SweepRow};
use arsf_core::DetectionMode;
use arsf_schedule::SchedulePolicy;
use arsf_sensor::{FaultKind, FaultModel};
use proptest::prelude::*;

/// Splits one CSV line into fields, honouring the report's quoting rules.
fn split_csv(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted && chars.peek() == Some(&'"') => {
                chars.next();
                field.push('"');
            }
            '"' => quoted = !quoted,
            ',' if !quoted => fields.push(std::mem::take(&mut field)),
            c => field.push(c),
        }
    }
    fields.push(field);
    fields
}

fn schedule_pool(i: usize) -> SchedulePolicy {
    match i % 3 {
        0 => SchedulePolicy::Ascending,
        1 => SchedulePolicy::Descending,
        _ => SchedulePolicy::Random,
    }
}

fn open_fuser_pool(i: usize) -> FuserSpec {
    match i % 4 {
        0 => FuserSpec::Marzullo,
        1 => FuserSpec::Hull,
        2 => FuserSpec::MidpointMedian,
        _ => FuserSpec::Historical {
            max_rate: 3.5,
            dt: 0.1,
        },
    }
}

fn fault_set_pool(i: usize) -> Vec<(usize, FaultModel)> {
    match i % 3 {
        0 => vec![],
        1 => vec![(2, FaultModel::new(FaultKind::Bias { offset: 3.0 }, 0.25))],
        _ => vec![
            (1, FaultModel::new(FaultKind::Silent, 0.5)),
            (3, FaultModel::new(FaultKind::Scale { factor: 1.5 }, 1.0)),
        ],
    }
}

fn attacker_pool(i: usize) -> AttackerSpec {
    match i % 3 {
        0 => AttackerSpec::None,
        1 => AttackerSpec::Fixed {
            sensors: vec![0],
            strategy: StrategySpec::PhantomOptimal,
        },
        _ => AttackerSpec::RandomEachRound,
    }
}

/// Asserts one row's CSV line and JSON object carry exactly its axis
/// coordinates and supervisor columns.
fn assert_row_round_trips(
    row: &SweepRow,
    csv_line: &str,
    json_object: &str,
) -> Result<(), TestCaseError> {
    let fields = split_csv(csv_line);
    prop_assert_eq!(fields.len(), 25, "CSV column count: {}", csv_line);
    let s = &row.summary;
    prop_assert_eq!(&fields[0], &format!("{}", row.cell));
    prop_assert_eq!(&fields[1], &s.scenario);
    prop_assert_eq!(&fields[2], &row.suite);
    prop_assert_eq!(&fields[3], &row.faults);
    prop_assert_eq!(&fields[4], &row.attacker);
    prop_assert_eq!(&fields[5], &row.schedule);
    prop_assert_eq!(&fields[6], &s.fuser);
    prop_assert_eq!(&fields[7], &s.detector);
    prop_assert_eq!(&fields[8], &format!("{}", row.rounds));
    prop_assert_eq!(&fields[9], &format!("{}", row.seed));
    let (above, below, preempts, gap) = match &s.supervisor {
        None => (String::new(), String::new(), String::new(), String::new()),
        Some(sup) => (
            format!("{}", sup.above_rate),
            format!("{}", sup.below_rate),
            format!("{}", sup.preemptions),
            sup.min_gap.map_or(String::new(), |g| format!("{g}")),
        ),
    };
    prop_assert_eq!(&fields[18], &above);
    prop_assert_eq!(&fields[19], &below);
    prop_assert_eq!(&fields[20], &preempts);
    prop_assert_eq!(&fields[21], &gap);
    // Per-vehicle columns: pipe-joined in CSV, arrays in JSON, leader
    // first; empty for everything but closed-loop platoon rows.
    let vehicle_means: Vec<String> = s
        .vehicles
        .iter()
        .map(|v| format!("{}", v.widths.mean()))
        .collect();
    let vehicle_maxes_csv: Vec<String> = s
        .vehicles
        .iter()
        .map(|v| v.widths.max().map_or(String::new(), |w| format!("{w}")))
        .collect();
    let vehicle_lost: Vec<String> = s
        .vehicles
        .iter()
        .map(|v| format!("{}", v.truth_lost))
        .collect();
    prop_assert_eq!(&fields[22], &vehicle_means.join("|"));
    prop_assert_eq!(&fields[23], &vehicle_maxes_csv.join("|"));
    prop_assert_eq!(&fields[24], &vehicle_lost.join("|"));

    let null_or = |v: &str| {
        if v.is_empty() {
            "null".to_string()
        } else {
            v.to_string()
        }
    };
    for expected in [
        format!("\"cell\":{}", row.cell),
        format!("\"suite\":\"{}\"", row.suite),
        format!("\"faults\":\"{}\"", row.faults),
        format!("\"attacker\":\"{}\"", row.attacker),
        format!("\"schedule\":\"{}\"", row.schedule),
        format!("\"rounds\":{}", row.rounds),
        format!("\"seed\":{}", row.seed),
        format!("\"above_rate\":{}", null_or(&above)),
        format!("\"below_rate\":{}", null_or(&below)),
        format!("\"preemptions\":{}", null_or(&preempts)),
        format!("\"min_gap\":{}", null_or(&gap)),
        format!("\"vehicle_mean_widths\":[{}]", vehicle_means.join(",")),
        format!(
            "\"vehicle_max_widths\":[{}]",
            s.vehicles
                .iter()
                .map(|v| v
                    .widths
                    .max()
                    .map_or("null".to_string(), |w| format!("{w}")))
                .collect::<Vec<_>>()
                .join(",")
        ),
        format!("\"vehicle_truth_lost\":[{}]", vehicle_lost.join(",")),
    ] {
        prop_assert!(
            json_object.contains(&expected),
            "JSON object misses `{}`: {}",
            expected,
            json_object
        );
    }
    Ok(())
}

fn assert_report_round_trips(grid: &SweepGrid) -> Result<(), TestCaseError> {
    let report = grid.run_serial();
    let csv = report.to_csv();
    let lines: Vec<&str> = csv.lines().skip(1).collect();
    prop_assert_eq!(lines.len(), report.len());
    let json = report.to_json();
    let objects: Vec<&str> = json
        .split("{\"cell\":")
        .skip(1)
        .map(|chunk| chunk.split('}').next().unwrap_or(""))
        .collect();
    prop_assert_eq!(objects.len(), report.len());
    for (row, (line, object)) in report.rows().iter().zip(lines.iter().zip(&objects)) {
        let object = format!("{{\"cell\":{object}}}");
        assert_row_round_trips(row, line, &object)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn open_loop_rows_round_trip_axis_coordinates(
        fusers in prop::collection::vec(0usize..4, 1..=2),
        fault_sets in prop::collection::vec(0usize..3, 1..=2),
        attackers in prop::collection::vec(0usize..3, 1..=2),
        schedule in 0usize..3,
        seeds in prop::collection::vec(0u64..1000, 1..=2),
        rounds in 3u64..8,
    ) {
        let base = Scenario::new("prop", SuiteSpec::Landshark).with_rounds(rounds);
        let grid = SweepGrid::new(base)
            .fusers(fusers.into_iter().map(open_fuser_pool))
            .fault_sets(fault_sets.into_iter().map(fault_set_pool))
            .attackers(attackers.into_iter().map(attacker_pool))
            .schedules([schedule_pool(schedule)])
            .seeds(seeds);
        assert_report_round_trips(&grid)?;
    }

    #[test]
    fn closed_loop_rows_round_trip_supervisor_columns(
        historical in 0usize..2,
        platoon in 0usize..2,
        schedule in 0usize..3,
        seeds in prop::collection::vec(0u64..1000, 1..=2),
        rounds in 3u64..8,
        detector in 0usize..2,
    ) {
        let mut spec = ClosedLoopSpec::new(10.0);
        if platoon == 1 {
            spec = spec.with_platoon(2, 0.01);
        }
        let fuser = if historical == 1 {
            FuserSpec::Historical { max_rate: 3.5, dt: 0.1 }
        } else {
            FuserSpec::Marzullo
        };
        let detector = if detector == 1 {
            DetectionMode::Windowed { window: 5, tolerance: 2 }
        } else {
            DetectionMode::Immediate
        };
        let base = Scenario::new("prop-cl", SuiteSpec::Landshark)
            .with_attacker(AttackerSpec::RandomEachRound)
            .with_fuser(fuser)
            .with_detector(detector)
            .with_rounds(rounds)
            .with_closed_loop(spec);
        let grid = SweepGrid::new(base)
            .schedules([schedule_pool(schedule)])
            .seeds(seeds);
        for cell in grid.cells() {
            prop_assert!(cell.scenario.closed_loop.is_some());
        }
        assert_report_round_trips(&grid)?;
    }

    #[test]
    fn fault_labels_are_stable_and_distinct(
        a in 0usize..3,
        b in 0usize..3,
    ) {
        let la = faults_label(&fault_set_pool(a));
        let lb = faults_label(&fault_set_pool(b));
        prop_assert_eq!(a % 3 == b % 3, la == lb, "labels {} vs {}", la, lb);
        prop_assert!(!la.contains(','), "labels stay CSV-safe: {}", la);
    }
}
