//! Sensor measurements: value plus abstract interval.

use arsf_interval::Interval;

use crate::SensorId;

/// One sensor reading: the raw measured value and the abstract interval
/// constructed around it from the sensor's specification.
///
/// # Example
///
/// ```
/// use arsf_interval::Interval;
/// use arsf_sensor::{Measurement, SensorId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let m = Measurement::new(SensorId::new(2), 10.1, Interval::centered(10.1, 0.5)?);
/// assert!(m.is_correct(10.0));
/// assert!(!m.is_correct(11.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Measurement {
    /// Which sensor produced this reading.
    pub sensor: SensorId,
    /// The raw measured value (the interval's centre).
    pub value: f64,
    /// The abstract interval guaranteed to contain the truth when the
    /// sensor is correct.
    pub interval: Interval<f64>,
}

impl Measurement {
    /// Creates a measurement.
    pub fn new(sensor: SensorId, value: f64, interval: Interval<f64>) -> Self {
        Self {
            sensor,
            value,
            interval,
        }
    }

    /// Returns `true` when the interval contains the given true value —
    /// the paper's definition of a *correct* sensor reading. Only
    /// meaningful in simulation, where the truth is known.
    pub fn is_correct(&self, truth: f64) -> bool {
        self.interval.contains(truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correctness_is_interval_membership() {
        let m = Measurement::new(SensorId::new(0), 5.0, Interval::new(4.0, 6.0).unwrap());
        assert!(m.is_correct(4.0));
        assert!(m.is_correct(6.0));
        assert!(!m.is_correct(6.01));
    }

    #[test]
    fn fields_round_trip() {
        let iv = Interval::new(1.0, 3.0).unwrap();
        let m = Measurement::new(SensorId::new(9), 2.0, iv);
        assert_eq!(m.sensor, SensorId::new(9));
        assert_eq!(m.value, 2.0);
        assert_eq!(m.interval, iv);
    }
}
