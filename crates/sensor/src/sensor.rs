//! Samplable sensors.

use core::fmt;

use arsf_interval::Interval;
use rand::Rng;

use crate::{FaultModel, Measurement, NoiseModel, SensorSpec};

/// A small integer identity for a sensor within one system.
///
/// # Example
///
/// ```
/// use arsf_sensor::SensorId;
///
/// let id = SensorId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(id.to_string(), "s3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SensorId(usize);

impl SensorId {
    /// Creates an id from a dense index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The dense index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for SensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<usize> for SensorId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

/// A samplable abstract sensor: spec + noise model + optional fault model.
///
/// Calling [`Sensor::sample`] with the current ground truth produces a
/// [`Measurement`]: the noisy value and the interval of radius
/// [`SensorSpec::radius`] centred on it. Without an (injected) fault the
/// measurement is always *correct* — the interval contains the truth —
/// because every [`NoiseModel`] is bounded by the radius.
///
/// # Example
///
/// ```
/// use arsf_sensor::{FaultKind, FaultModel, NoiseModel, Sensor, SensorSpec};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(5);
/// let mut sensor = Sensor::new(0, SensorSpec::new("gps", 0.5), NoiseModel::Uniform)
///     .with_fault(FaultModel::new(FaultKind::Bias { offset: 50.0 }, 1.0));
/// let m = sensor.sample(10.0, &mut rng);
/// assert!(!m.is_correct(10.0), "a firing bias fault breaks correctness");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sensor {
    id: SensorId,
    spec: SensorSpec,
    noise: NoiseModel,
    fault: Option<FaultModel>,
}

impl Sensor {
    /// Creates a sensor with the given id, spec and noise model and no
    /// fault injection.
    pub fn new(id: impl Into<SensorId>, spec: SensorSpec, noise: NoiseModel) -> Self {
        Self {
            id: id.into(),
            spec,
            noise,
            fault: None,
        }
    }

    /// Attaches a fault model (builder style).
    #[must_use]
    pub fn with_fault(mut self, fault: FaultModel) -> Self {
        self.fault = Some(fault);
        self
    }

    /// The sensor's identity.
    pub fn id(&self) -> SensorId {
        self.id
    }

    /// The static specification.
    pub fn spec(&self) -> &SensorSpec {
        &self.spec
    }

    /// The noise model.
    pub fn noise(&self) -> NoiseModel {
        self.noise
    }

    /// The fault model, if any.
    pub fn fault(&self) -> Option<FaultModel> {
        self.fault
    }

    /// Samples the sensor at the given ground truth.
    ///
    /// Returns `None` only when a firing fault silences the sensor
    /// ([`crate::FaultKind::Silent`]); otherwise the measurement (possibly
    /// corrupted by a firing fault) and its abstract interval.
    pub fn sample<R: Rng + ?Sized>(&mut self, truth: f64, rng: &mut R) -> Measurement {
        self.try_sample(truth, rng)
            .expect("sensor without a Silent fault always produces a measurement")
    }

    /// Samples the sensor, returning `None` when a firing
    /// [`crate::FaultKind::Silent`] fault drops the reading.
    pub fn try_sample<R: Rng + ?Sized>(&mut self, truth: f64, rng: &mut R) -> Option<Measurement> {
        let radius = self.spec.radius();
        let honest = truth + self.noise.sample_offset(radius, rng);
        let value = match self.fault {
            Some(fault) if fault.fires(rng) => fault.kind().corrupt(honest, radius)?,
            _ => honest,
        };
        let interval = Interval::centered(value, radius)
            .expect("finite truth, bounded noise and finite radius yield finite endpoints");
        Some(Measurement::new(self.id, value, interval))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn honest_sensor_is_always_correct() {
        let mut rng = rng();
        let mut s = Sensor::new(0, SensorSpec::new("gps", 0.5), NoiseModel::Uniform);
        for _ in 0..500 {
            let m = s.sample(10.0, &mut rng);
            assert!(m.is_correct(10.0));
            assert_eq!(m.interval.width(), 1.0);
            assert_eq!(m.interval.midpoint(), m.value);
        }
    }

    #[test]
    fn zero_radius_sensor_reports_exactly() {
        let mut rng = rng();
        let mut s = Sensor::new(1, SensorSpec::new("oracle", 0.0), NoiseModel::Uniform);
        let m = s.sample(3.25, &mut rng);
        assert_eq!(m.value, 3.25);
        assert_eq!(m.interval.width(), 0.0);
    }

    #[test]
    fn firing_bias_fault_breaks_correctness() {
        let mut rng = rng();
        let mut s = Sensor::new(2, SensorSpec::new("gps", 0.5), NoiseModel::None)
            .with_fault(FaultModel::new(FaultKind::Bias { offset: 10.0 }, 1.0));
        let m = s.sample(0.0, &mut rng);
        assert_eq!(m.value, 10.0);
        assert!(!m.is_correct(0.0));
    }

    #[test]
    fn silent_fault_drops_reading() {
        let mut rng = rng();
        let mut s = Sensor::new(3, SensorSpec::new("cam", 1.0), NoiseModel::None)
            .with_fault(FaultModel::new(FaultKind::Silent, 1.0));
        assert!(s.try_sample(5.0, &mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "Silent fault")]
    fn sample_panics_on_silenced_sensor() {
        let mut rng = rng();
        let mut s = Sensor::new(3, SensorSpec::new("cam", 1.0), NoiseModel::None)
            .with_fault(FaultModel::new(FaultKind::Silent, 1.0));
        let _ = s.sample(5.0, &mut rng);
    }

    #[test]
    fn non_firing_fault_keeps_sensor_correct() {
        let mut rng = rng();
        let mut s = Sensor::new(4, SensorSpec::new("enc", 0.1), NoiseModel::Uniform)
            .with_fault(FaultModel::new(FaultKind::StuckAt { value: 0.0 }, 0.0));
        for _ in 0..100 {
            assert!(s.sample(10.0, &mut rng).is_correct(10.0));
        }
    }

    #[test]
    fn sensor_id_display_and_conversions() {
        let id: SensorId = 7_usize.into();
        assert_eq!(id.to_string(), "s7");
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn accessors_round_trip() {
        let s = Sensor::new(1, SensorSpec::new("x", 0.2), NoiseModel::None);
        assert_eq!(s.id(), SensorId::new(1));
        assert_eq!(s.spec().name(), "x");
        assert_eq!(s.noise(), NoiseModel::None);
        assert!(s.fault().is_none());
    }
}
