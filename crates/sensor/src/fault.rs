//! Random fault injection.
//!
//! The paper assumes uncompromised sensors are always correct and names
//! random faults as the planned extension ("an extension of this work will
//! introduce random faults in addition to attacks", Section V). This module
//! implements that extension: a [`FaultModel`] attached to a sensor fires
//! probabilistically each round and corrupts the measurement so that the
//! resulting interval need *not* contain the true value.

use rand::Rng;

/// What a fault does to the measurement when it fires.
///
/// # Example
///
/// ```
/// use arsf_sensor::FaultKind;
///
/// let stuck = FaultKind::StuckAt { value: 0.0 };
/// assert_eq!(stuck.corrupt(10.0, 0.5), Some(0.0));
/// let bias = FaultKind::Bias { offset: 2.0 };
/// assert_eq!(bias.corrupt(10.0, 0.5), Some(12.0));
/// assert_eq!(FaultKind::Silent.corrupt(10.0, 0.5), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum FaultKind {
    /// The sensor reports a fixed value regardless of the truth (a stuck
    /// ADC, a frozen filter).
    StuckAt {
        /// The reported value.
        value: f64,
    },
    /// The sensor reports the truth plus a constant offset larger than its
    /// error band (mis-calibration, spoofed reference).
    Bias {
        /// The additive offset.
        offset: f64,
    },
    /// The sensor reports the truth scaled by a factor (wheel slip on an
    /// encoder, Doppler error).
    Scale {
        /// The multiplicative factor.
        factor: f64,
    },
    /// The sensor produces no measurement this round (dropped frame).
    Silent,
}

impl FaultKind {
    /// Applies the fault to a truthful measurement, returning the faulty
    /// value or `None` when the reading is dropped entirely.
    ///
    /// `radius` is the sensor's interval radius; it is unused by the
    /// current kinds but kept in the signature so future kinds can scale
    /// with sensor precision without an API break.
    pub fn corrupt(&self, truth: f64, radius: f64) -> Option<f64> {
        let _ = radius;
        match *self {
            FaultKind::StuckAt { value } => Some(value),
            FaultKind::Bias { offset } => Some(truth + offset),
            FaultKind::Scale { factor } => Some(truth * factor),
            FaultKind::Silent => None,
        }
    }
}

/// A fault kind plus a per-round firing probability.
///
/// # Example
///
/// ```
/// use arsf_sensor::{FaultKind, FaultModel};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let model = FaultModel::new(FaultKind::Bias { offset: 5.0 }, 1.0);
/// let mut rng = StdRng::seed_from_u64(1);
/// assert!(model.fires(&mut rng)); // probability 1.0 always fires
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultModel {
    kind: FaultKind,
    probability: f64,
}

impl FaultModel {
    /// Creates a fault model firing with the given per-round probability
    /// (clamped to `[0, 1]`).
    pub fn new(kind: FaultKind, probability: f64) -> Self {
        Self {
            kind,
            probability: probability.clamp(0.0, 1.0),
        }
    }

    /// The fault behaviour when firing.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// The per-round firing probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Rolls the dice for this round.
    pub fn fires<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        if self.probability <= 0.0 {
            return false;
        }
        if self.probability >= 1.0 {
            return true;
        }
        rng.gen_bool(self.probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stuck_at_ignores_truth() {
        let k = FaultKind::StuckAt { value: 3.0 };
        assert_eq!(k.corrupt(100.0, 1.0), Some(3.0));
        assert_eq!(k.corrupt(-5.0, 1.0), Some(3.0));
    }

    #[test]
    fn bias_shifts_truth() {
        let k = FaultKind::Bias { offset: -2.5 };
        assert_eq!(k.corrupt(10.0, 1.0), Some(7.5));
    }

    #[test]
    fn scale_multiplies_truth() {
        let k = FaultKind::Scale { factor: 1.5 };
        assert_eq!(k.corrupt(10.0, 1.0), Some(15.0));
        assert_eq!(k.corrupt(0.0, 1.0), Some(0.0));
    }

    #[test]
    fn silent_drops_reading() {
        assert_eq!(FaultKind::Silent.corrupt(10.0, 1.0), None);
    }

    #[test]
    fn probability_is_clamped() {
        assert_eq!(FaultModel::new(FaultKind::Silent, 7.0).probability(), 1.0);
        assert_eq!(FaultModel::new(FaultKind::Silent, -1.0).probability(), 0.0);
    }

    #[test]
    fn extreme_probabilities_are_deterministic() {
        let mut rng = StdRng::seed_from_u64(2);
        let never = FaultModel::new(FaultKind::Silent, 0.0);
        let always = FaultModel::new(FaultKind::Silent, 1.0);
        for _ in 0..100 {
            assert!(!never.fires(&mut rng));
            assert!(always.fires(&mut rng));
        }
    }

    #[test]
    fn intermediate_probability_fires_sometimes() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = FaultModel::new(FaultKind::Silent, 0.5);
        let fired = (0..1000).filter(|_| model.fires(&mut rng)).count();
        assert!((300..700).contains(&fired), "fired {fired} of 1000");
    }
}
