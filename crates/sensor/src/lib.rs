//! Abstract sensor models for attack-resilient sensor fusion.
//!
//! The paper's system model converts every raw sensor reading into an
//! *abstract sensor*: a closed interval centred at the measurement whose
//! radius is derived from the manufacturer's precision guarantee `δ`,
//! inflated by implementation limits such as sampling jitter. A sensor is
//! **correct** when its interval contains the true value and **faulty**
//! otherwise.
//!
//! This crate provides:
//!
//! * [`SensorSpec`] — the static description (name, precision, jitter)
//!   from which interval radii are derived,
//! * [`NoiseModel`] — bounded in-interval noise models; the paper's
//!   analysis is distribution-free, so any bounded model yields a *correct*
//!   sensor,
//! * [`FaultModel`]/[`FaultKind`] — random fault injection (the paper's
//!   Section V extension: faults in addition to attacks),
//! * [`Sensor`] and [`SensorSuite`] — samplable sensors and collections,
//! * [`suite::landshark`] — the LandShark speed-sensing suite from the
//!   case study (GPS, camera, two wheel encoders),
//! * [`Measurement`] — one reading: value + abstract interval.
//!
//! # Example
//!
//! ```
//! use arsf_sensor::{NoiseModel, Sensor, SensorSpec};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let spec = SensorSpec::new("gps", 0.45).with_jitter(0.05);
//! let mut gps = Sensor::new(0, spec, NoiseModel::Uniform);
//! let mut rng = StdRng::seed_from_u64(7);
//! let m = gps.sample(10.0, &mut rng);
//! assert!(m.interval.contains(10.0), "no fault injected, so correct");
//! assert_eq!(m.interval.width(), 1.0); // 2 * (0.45 + 0.05)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod measurement;
mod noise;
mod sensor;
mod spec;
pub mod suite;

pub use fault::{FaultKind, FaultModel};
pub use measurement::Measurement;
pub use noise::NoiseModel;
pub use sensor::{Sensor, SensorId};
pub use spec::{encoder_interval_width, encoder_width_at, SensorSpec};
pub use suite::SensorSuite;
