//! Bounded measurement-noise models.

use rand::Rng;

/// A bounded noise model producing measurement offsets inside
/// `[-radius, +radius]`.
///
/// The paper deliberately makes **no distributional assumption** about
/// sensor noise — only that a correct sensor's interval contains the true
/// value, which holds exactly when the measurement offset stays within the
/// interval radius. Every model here guarantees that bound, so the choice
/// of model changes the statistics of experiments but never the
/// correctness of a sensor.
///
/// # Example
///
/// ```
/// use arsf_sensor::NoiseModel;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(42);
/// for model in [
///     NoiseModel::None,
///     NoiseModel::Uniform,
///     NoiseModel::Triangular,
///     NoiseModel::ClippedGaussian { sigma_fraction: 0.4 },
///     NoiseModel::ConstantBias { fraction: -0.5 },
/// ] {
///     let offset = model.sample_offset(2.0, &mut rng);
///     assert!(offset.abs() <= 2.0);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum NoiseModel {
    /// Measurements equal the true value exactly.
    None,
    /// Offsets drawn uniformly from `[-radius, +radius]` — the paper's own
    /// evaluation enumerates measurement placements uniformly, making this
    /// the default model everywhere in this reproduction.
    Uniform,
    /// Symmetric triangular distribution on `[-radius, +radius]` (sum of
    /// two uniform halves), concentrating mass near the true value.
    Triangular,
    /// Zero-mean Gaussian with standard deviation `sigma_fraction × radius`,
    /// clipped to `[-radius, +radius]` so correctness is preserved.
    ClippedGaussian {
        /// Standard deviation as a fraction of the interval radius.
        sigma_fraction: f64,
    },
    /// A deterministic offset of `fraction × radius` (`fraction` in
    /// `[-1, 1]`), modelling systematic bias within specification.
    ConstantBias {
        /// Offset as a fraction of the interval radius, clamped to ±1.
        fraction: f64,
    },
}

impl NoiseModel {
    /// Draws a measurement offset in `[-radius, +radius]`.
    ///
    /// A non-positive `radius` always produces offset `0.0`.
    pub fn sample_offset<R: Rng + ?Sized>(&self, radius: f64, rng: &mut R) -> f64 {
        if radius <= 0.0 {
            return 0.0;
        }
        match *self {
            NoiseModel::None => 0.0,
            NoiseModel::Uniform => rng.gen_range(-radius..=radius),
            NoiseModel::Triangular => {
                let a: f64 = rng.gen_range(-0.5..=0.5);
                let b: f64 = rng.gen_range(-0.5..=0.5);
                (a + b) * radius
            }
            NoiseModel::ClippedGaussian { sigma_fraction } => {
                let sigma = sigma_fraction.abs() * radius;
                let z = standard_normal(rng);
                (z * sigma).clamp(-radius, radius)
            }
            NoiseModel::ConstantBias { fraction } => fraction.clamp(-1.0, 1.0) * radius,
        }
    }
}

impl Default for NoiseModel {
    /// Returns [`NoiseModel::Uniform`], the paper's evaluation model.
    fn default() -> Self {
        NoiseModel::Uniform
    }
}

/// One standard-normal draw via the Box–Muller transform (the `rand_distr`
/// crate is intentionally avoided to keep the dependency set minimal).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(20140324) // DATE'14 started March 24, 2014
    }

    #[test]
    fn all_models_respect_the_radius_bound() {
        let mut rng = rng();
        let models = [
            NoiseModel::None,
            NoiseModel::Uniform,
            NoiseModel::Triangular,
            NoiseModel::ClippedGaussian {
                sigma_fraction: 0.9,
            },
            NoiseModel::ConstantBias { fraction: 0.7 },
        ];
        for model in models {
            for _ in 0..2000 {
                let offset = model.sample_offset(1.5, &mut rng);
                assert!(offset.abs() <= 1.5, "{model:?} produced {offset}");
            }
        }
    }

    #[test]
    fn zero_radius_is_silent() {
        let mut rng = rng();
        assert_eq!(NoiseModel::Uniform.sample_offset(0.0, &mut rng), 0.0);
        assert_eq!(NoiseModel::Uniform.sample_offset(-1.0, &mut rng), 0.0);
    }

    #[test]
    fn none_model_is_exact() {
        let mut rng = rng();
        for _ in 0..10 {
            assert_eq!(NoiseModel::None.sample_offset(3.0, &mut rng), 0.0);
        }
    }

    #[test]
    fn constant_bias_is_deterministic_and_clamped() {
        let mut rng = rng();
        let m = NoiseModel::ConstantBias { fraction: 0.5 };
        assert_eq!(m.sample_offset(2.0, &mut rng), 1.0);
        let clamped = NoiseModel::ConstantBias { fraction: 7.0 };
        assert_eq!(clamped.sample_offset(2.0, &mut rng), 2.0);
    }

    #[test]
    fn uniform_covers_both_signs() {
        let mut rng = rng();
        let mut pos = 0;
        let mut neg = 0;
        for _ in 0..500 {
            let x = NoiseModel::Uniform.sample_offset(1.0, &mut rng);
            if x > 0.0 {
                pos += 1;
            } else if x < 0.0 {
                neg += 1;
            }
        }
        assert!(pos > 100 && neg > 100, "pos = {pos}, neg = {neg}");
    }

    #[test]
    fn triangular_concentrates_near_zero() {
        let mut rng = rng();
        let mut inner = 0;
        let n = 4000;
        for _ in 0..n {
            let x = NoiseModel::Triangular.sample_offset(1.0, &mut rng);
            if x.abs() <= 0.5 {
                inner += 1;
            }
        }
        // Triangular puts 75% of mass in the inner half (uniform puts 50%).
        assert!(inner as f64 / n as f64 > 0.65, "inner fraction too small");
    }

    #[test]
    fn gaussian_clipping_keeps_extremes_in_range() {
        let mut rng = rng();
        let m = NoiseModel::ClippedGaussian {
            sigma_fraction: 5.0,
        };
        for _ in 0..1000 {
            let x = m.sample_offset(1.0, &mut rng);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn default_is_uniform() {
        assert_eq!(NoiseModel::default(), NoiseModel::Uniform);
    }
}
