//! Sensor suites: collections of sensors measuring one variable.

use rand::Rng;

use crate::{Measurement, NoiseModel, Sensor, SensorId, SensorSpec};

/// Conversion factor from metres/second to miles/hour.
pub const MPH_PER_MPS: f64 = 2.236_936_292_054_402;

/// An ordered collection of sensors measuring the same physical variable.
///
/// The order is the sensor's identity order (index = [`SensorId`]); the
/// *transmission* order is a separate concern handled by the schedule
/// crate.
///
/// # Example
///
/// ```
/// use arsf_sensor::SensorSuite;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut suite = arsf_sensor::suite::landshark();
/// assert_eq!(suite.len(), 4);
/// let mut rng = StdRng::seed_from_u64(11);
/// let readings = suite.sample_all(10.0, &mut rng);
/// assert_eq!(readings.len(), 4);
/// assert!(readings.iter().all(|m| m.is_correct(10.0)));
/// # let _: &SensorSuite = &suite;
/// ```
#[derive(Debug, Clone, Default)]
pub struct SensorSuite {
    sensors: Vec<Sensor>,
}

impl SensorSuite {
    /// Creates an empty suite.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a suite from specs, assigning dense ids in order and the
    /// given noise model to every sensor.
    pub fn from_specs(specs: impl IntoIterator<Item = SensorSpec>, noise: NoiseModel) -> Self {
        let sensors = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| Sensor::new(i, spec, noise))
            .collect();
        Self { sensors }
    }

    /// Appends a sensor (its id is *not* rewritten; callers constructing
    /// suites manually are responsible for id consistency).
    pub fn push(&mut self, sensor: Sensor) {
        self.sensors.push(sensor);
    }

    /// The number of sensors.
    pub fn len(&self) -> usize {
        self.sensors.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.sensors.is_empty()
    }

    /// Immutable access to the sensors in id order.
    pub fn sensors(&self) -> &[Sensor] {
        &self.sensors
    }

    /// Mutable access to the sensors (e.g. to attach fault models).
    pub fn sensors_mut(&mut self) -> &mut [Sensor] {
        &mut self.sensors
    }

    /// Looks a sensor up by id.
    pub fn get(&self, id: SensorId) -> Option<&Sensor> {
        self.sensors.iter().find(|s| s.id() == id)
    }

    /// The interval widths of all sensors in id order — the only
    /// information available a priori to schedule designers (paper,
    /// Section IV).
    pub fn widths(&self) -> Vec<f64> {
        self.sensors
            .iter()
            .map(|s| s.spec().interval_width())
            .collect()
    }

    /// Samples every sensor at the given ground truth, skipping sensors
    /// silenced by a firing [`crate::FaultKind::Silent`] fault.
    pub fn sample_all<R: Rng + ?Sized>(&mut self, truth: f64, rng: &mut R) -> Vec<Measurement> {
        let mut out = Vec::with_capacity(self.sensors.len());
        self.sample_all_into(truth, rng, &mut out);
        out
    }

    /// [`SensorSuite::sample_all`] writing into a caller-owned buffer, so
    /// a round engine can sample every control period without
    /// reallocating. The buffer is cleared first.
    pub fn sample_all_into<R: Rng + ?Sized>(
        &mut self,
        truth: f64,
        rng: &mut R,
        out: &mut Vec<Measurement>,
    ) {
        out.clear();
        out.extend(
            self.sensors
                .iter_mut()
                .filter_map(|s| s.try_sample(truth, rng)),
        );
    }
}

impl FromIterator<Sensor> for SensorSuite {
    fn from_iter<I: IntoIterator<Item = Sensor>>(iter: I) -> Self {
        Self {
            sensors: iter.into_iter().collect(),
        }
    }
}

impl Extend<Sensor> for SensorSuite {
    fn extend<I: IntoIterator<Item = Sensor>>(&mut self, iter: I) {
        self.sensors.extend(iter);
    }
}

/// The LandShark speed-sensing suite from the paper's case study:
///
/// | sensor     | interval width (mph) | source                        |
/// |------------|----------------------|-------------------------------|
/// | encoder-l  | 0.2                  | manufacturer spec (192 c/rev) |
/// | encoder-r  | 0.2                  | manufacturer spec             |
/// | GPS        | 1.0                  | determined empirically        |
/// | camera     | 2.0                  | determined empirically        |
///
/// Sensors use [`NoiseModel::Uniform`]; ids are assigned in the order
/// above (most precise first, matching the table).
pub fn landshark() -> SensorSuite {
    SensorSuite::from_specs(
        [
            SensorSpec::new("encoder-left", 0.095).with_jitter(0.005),
            SensorSpec::new("encoder-right", 0.095).with_jitter(0.005),
            SensorSpec::new("gps", 0.45).with_jitter(0.05),
            SensorSpec::new("camera", 0.9).with_jitter(0.1),
        ],
        NoiseModel::Uniform,
    )
}

/// A uniform-noise suite with the given interval *widths* (half of each
/// width becomes the precision), used by the Table I experiments where
/// setups are described by width multisets such as `L = {5, 11, 17}`.
pub fn from_widths(widths: &[f64]) -> SensorSuite {
    SensorSuite::from_specs(
        widths
            .iter()
            .enumerate()
            .map(|(i, &w)| SensorSpec::new(format!("s{i}"), w * 0.5)),
        NoiseModel::Uniform,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultKind, FaultModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn landshark_matches_case_study_widths() {
        let suite = landshark();
        let widths = suite.widths();
        assert_eq!(widths.len(), 4);
        assert!((widths[0] - 0.2).abs() < 1e-12);
        assert!((widths[1] - 0.2).abs() < 1e-12);
        assert!((widths[2] - 1.0).abs() < 1e-12);
        assert!((widths[3] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn from_widths_builds_matching_specs() {
        let suite = from_widths(&[5.0, 11.0, 17.0]);
        assert_eq!(suite.widths(), vec![5.0, 11.0, 17.0]);
        assert_eq!(suite.sensors()[1].spec().name(), "s1");
    }

    #[test]
    fn sample_all_returns_one_reading_per_healthy_sensor() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut suite = landshark();
        let readings = suite.sample_all(10.0, &mut rng);
        assert_eq!(readings.len(), 4);
        for (i, m) in readings.iter().enumerate() {
            assert_eq!(m.sensor.index(), i);
            assert!(m.is_correct(10.0));
        }
    }

    #[test]
    fn silent_faults_shrink_the_reading_set() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut suite = landshark();
        suite.sensors_mut()[0] = suite.sensors()[0]
            .clone()
            .with_fault(FaultModel::new(FaultKind::Silent, 1.0));
        let readings = suite.sample_all(10.0, &mut rng);
        assert_eq!(readings.len(), 3);
        assert!(readings.iter().all(|m| m.sensor.index() != 0));
    }

    #[test]
    fn get_by_id() {
        let suite = landshark();
        assert_eq!(suite.get(SensorId::new(2)).unwrap().spec().name(), "gps");
        assert!(suite.get(SensorId::new(9)).is_none());
    }

    #[test]
    fn collect_and_extend() {
        let sensors = vec![
            Sensor::new(0, SensorSpec::new("a", 1.0), NoiseModel::None),
            Sensor::new(1, SensorSpec::new("b", 2.0), NoiseModel::None),
        ];
        let mut suite: SensorSuite = sensors.into_iter().collect();
        assert_eq!(suite.len(), 2);
        suite.extend([Sensor::new(2, SensorSpec::new("c", 3.0), NoiseModel::None)]);
        assert_eq!(suite.len(), 3);
        assert!(!suite.is_empty());
    }

    #[test]
    fn empty_suite() {
        let mut suite = SensorSuite::new();
        assert!(suite.is_empty());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(suite.sample_all(1.0, &mut rng).is_empty());
    }
}
