//! Static sensor specifications.

use core::fmt;

/// The static description of one sensor: a display name, the
/// manufacturer's precision guarantee `δ` and an extra jitter allowance.
///
/// The paper constructs each abstract interval with radius `δ` around the
/// raw measurement, "further increased if the worst-case guarantees for
/// sampling jitter (and implementation limitations) are considered" — the
/// jitter term models that increase. The interval width is therefore
/// `2 × (precision + jitter)` and is fixed per sensor, which is exactly the
/// property the paper's schedule analysis relies on (widths are the only
/// a-priori information).
///
/// # Example
///
/// ```
/// use arsf_sensor::SensorSpec;
///
/// let spec = SensorSpec::new("encoder-left", 0.08).with_jitter(0.02);
/// assert_eq!(spec.radius(), 0.1);
/// assert_eq!(spec.interval_width(), 0.2);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SensorSpec {
    name: String,
    precision: f64,
    jitter: f64,
}

impl SensorSpec {
    /// Creates a spec with the given display name and precision `δ`
    /// (half-width of the guaranteed error band) and zero jitter.
    ///
    /// # Panics
    ///
    /// Panics if `precision` is negative or not finite — specs are static
    /// configuration, so a bad value is a programming error.
    pub fn new(name: impl Into<String>, precision: f64) -> Self {
        assert!(
            precision.is_finite() && precision >= 0.0,
            "precision must be finite and non-negative"
        );
        Self {
            name: name.into(),
            precision,
            jitter: 0.0,
        }
    }

    /// Adds a jitter allowance (extra radius) to the spec.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is negative or not finite.
    #[must_use]
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!(
            jitter.is_finite() && jitter >= 0.0,
            "jitter must be finite and non-negative"
        );
        self.jitter = jitter;
        self
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The precision guarantee `δ`.
    pub fn precision(&self) -> f64 {
        self.precision
    }

    /// The jitter allowance.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// The interval radius: `precision + jitter`.
    pub fn radius(&self) -> f64 {
        self.precision + self.jitter
    }

    /// The interval width: `2 × radius`.
    pub fn interval_width(&self) -> f64 {
        2.0 * self.radius()
    }
}

impl fmt::Display for SensorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (±{})", self.name, self.radius())
    }
}

/// Derives a wheel-encoder interval width from first principles, following
/// the case study: "an encoder with 192 cycles per revolution, a measuring
/// error of 0.5% and sampling jitter error of 0.05%; the final interval
/// length was computed to be 0.2 mph" at the 10 mph operating point.
///
/// The width combines the relative error terms (proportional to speed)
/// with the quantisation step of counting whole encoder cycles during one
/// sampling period:
///
/// `width = 2 · v · (measuring_error + jitter_error) + circumference / (cycles · period)`
///
/// With the defaults in [`encoder_width_at`] (0.8 m circumference, 100 ms
/// period) this evaluates to ≈ 0.2 mph at v = 10 mph, matching the paper.
///
/// Speeds are in mph; the circumference term is converted from m/s
/// (1 m/s = 2.23694 mph).
///
/// # Example
///
/// ```
/// use arsf_sensor::suite::MPH_PER_MPS;
/// let width = arsf_sensor::encoder_interval_width(10.0, 192, 0.005, 0.0005, 0.8, 0.1);
/// assert!((width - 0.2).abs() < 0.01);
/// # let _ = MPH_PER_MPS;
/// ```
pub fn encoder_interval_width(
    speed_mph: f64,
    cycles_per_rev: u32,
    measuring_error: f64,
    jitter_error: f64,
    wheel_circumference_m: f64,
    sample_period_s: f64,
) -> f64 {
    let relative = 2.0 * speed_mph * (measuring_error + jitter_error);
    let quantisation_mps = wheel_circumference_m / (f64::from(cycles_per_rev) * sample_period_s);
    relative + quantisation_mps * crate::suite::MPH_PER_MPS
}

/// [`encoder_interval_width`] with the case-study calibration constants
/// (192 cycles/rev, 0.5% measuring error, 0.05% jitter, 0.8 m wheel,
/// 100 ms sampling period).
pub fn encoder_width_at(speed_mph: f64) -> f64 {
    encoder_interval_width(speed_mph, 192, 0.005, 0.0005, 0.8, 0.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_combines_precision_and_jitter() {
        let spec = SensorSpec::new("s", 0.4).with_jitter(0.1);
        assert_eq!(spec.radius(), 0.5);
        assert_eq!(spec.interval_width(), 1.0);
        assert_eq!(spec.precision(), 0.4);
        assert_eq!(spec.jitter(), 0.1);
        assert_eq!(spec.name(), "s");
    }

    #[test]
    #[should_panic(expected = "precision must be finite")]
    fn negative_precision_panics() {
        let _ = SensorSpec::new("bad", -1.0);
    }

    #[test]
    #[should_panic(expected = "jitter must be finite")]
    fn negative_jitter_panics() {
        let _ = SensorSpec::new("bad", 1.0).with_jitter(-0.5);
    }

    #[test]
    fn zero_jitter_default() {
        assert_eq!(SensorSpec::new("s", 0.25).radius(), 0.25);
    }

    #[test]
    fn display_mentions_name_and_radius() {
        let spec = SensorSpec::new("gps", 0.5);
        assert_eq!(spec.to_string(), "gps (±0.5)");
    }

    #[test]
    fn encoder_width_matches_paper_at_ten_mph() {
        let width = encoder_width_at(10.0);
        assert!(
            (width - 0.2).abs() < 0.01,
            "expected ~0.2 mph at 10 mph, got {width}"
        );
    }

    #[test]
    fn encoder_width_grows_with_speed() {
        assert!(encoder_width_at(20.0) > encoder_width_at(10.0));
    }

    #[test]
    fn encoder_width_shrinks_with_resolution() {
        let coarse = encoder_interval_width(10.0, 96, 0.005, 0.0005, 0.8, 0.1);
        let fine = encoder_interval_width(10.0, 384, 0.005, 0.0005, 0.8, 0.1);
        assert!(fine < coarse);
    }
}
