//! Ready-made nodes for tests and simple topologies.

use arsf_interval::Interval;

use crate::{Frame, FrameId, Node, NodeContext, NodeId, Payload};

/// A sensor node that broadcasts an externally-set interval in its slot.
///
/// The simulation layer sets the reading each round (sampling is its
/// concern, transport is ours); the node transmits the latest reading
/// once per slot and goes quiet when none is pending.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedSensorNode {
    id: NodeId,
    frame_id: FrameId,
    sensor: usize,
    reading: Option<Interval<f64>>,
}

impl FixedSensorNode {
    /// Creates a sensor node broadcasting measurements for logical sensor
    /// `sensor` under arbitration id `frame_id`.
    pub fn new(id: NodeId, frame_id: FrameId, sensor: usize) -> Self {
        Self {
            id,
            frame_id,
            sensor,
            reading: None,
        }
    }

    /// Sets the reading to broadcast at the next slot.
    pub fn set_reading(&mut self, interval: Interval<f64>) {
        self.reading = Some(interval);
    }

    /// The logical sensor index.
    pub fn sensor(&self) -> usize {
        self.sensor
    }
}

impl Node for FixedSensorNode {
    fn id(&self) -> NodeId {
        self.id
    }

    fn on_frame(&mut self, _frame: &Frame, _ctx: &mut NodeContext) {}

    fn on_slot(&mut self, ctx: &mut NodeContext) {
        if let Some(interval) = self.reading.take() {
            ctx.transmit(
                self.frame_id,
                Payload::Measurement {
                    sensor: self.sensor,
                    interval,
                },
            );
        }
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

/// A passive node recording every frame it observes — the bus-level
/// equivalent of a logic analyser, and the simplest demonstration that
/// *anyone* on a broadcast bus sees everything.
#[derive(Debug, Clone, PartialEq)]
pub struct RecorderNode {
    id: NodeId,
    frames: Vec<Frame>,
}

impl RecorderNode {
    /// Creates a recorder.
    pub fn new(id: NodeId) -> Self {
        Self {
            id,
            frames: Vec::new(),
        }
    }

    /// Everything observed so far.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Observed measurement payloads as `(sensor, interval)` pairs, in
    /// arrival order.
    pub fn measurements(&self) -> Vec<(usize, Interval<f64>)> {
        self.frames
            .iter()
            .filter_map(|f| match f.payload {
                Payload::Measurement { sensor, interval } => Some((sensor, interval)),
                _ => None,
            })
            .collect()
    }
}

impl Node for RecorderNode {
    fn id(&self) -> NodeId {
        self.id
    }

    fn on_frame(&mut self, frame: &Frame, _ctx: &mut NodeContext) {
        self.frames.push(frame.clone());
    }

    fn on_slot(&mut self, _ctx: &mut NodeContext) {}

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

/// A babbling-idiot node: the classic CAN failure mode where a broken
/// component transmits continuously. This one queues a frame in reaction
/// to **every** frame it observes (plus its own slot), so each slot's
/// arbitration has to sort it against legitimate traffic.
///
/// Used to test that the bus stays live and that frame-id arbitration
/// decides wire order within a slot: give the babbler a *high* id
/// (low priority) and sensor traffic still goes first; give it a low id
/// and it wins the wire but cannot erase other frames (TDMA still grants
/// every owner its slot).
#[derive(Debug, Clone, PartialEq)]
pub struct BabblingNode {
    id: NodeId,
    frame_id: FrameId,
    sent: u64,
}

impl BabblingNode {
    /// Creates a babbler transmitting under the given arbitration id.
    pub fn new(id: NodeId, frame_id: FrameId) -> Self {
        Self {
            id,
            frame_id,
            sent: 0,
        }
    }

    /// How many frames the babbler has queued so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl Node for BabblingNode {
    fn id(&self) -> NodeId {
        self.id
    }

    fn on_frame(&mut self, frame: &Frame, ctx: &mut NodeContext) {
        // React to everyone else's traffic (not our own, which would be
        // a tighter loop than even a broken ECU manages).
        if frame.sender != self.id {
            ctx.transmit(self.frame_id, Payload::Custom(self.sent));
            self.sent += 1;
        }
    }

    fn on_slot(&mut self, ctx: &mut NodeContext) {
        ctx.transmit(self.frame_id, Payload::Custom(self.sent));
        self.sent += 1;
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn fixed_sensor_transmits_once_per_reading() {
        let mut s = FixedSensorNode::new(NodeId::new(0), FrameId::new(1), 4);
        let mut ctx = NodeContext::default();
        s.on_slot(&mut ctx);
        assert!(ctx.outbox.is_empty(), "no reading pending");
        s.set_reading(iv(0.0, 1.0));
        s.on_slot(&mut ctx);
        assert_eq!(ctx.outbox.len(), 1);
        // The reading is consumed.
        let mut ctx2 = NodeContext::default();
        s.on_slot(&mut ctx2);
        assert!(ctx2.outbox.is_empty());
        assert_eq!(s.sensor(), 4);
    }

    #[test]
    fn babbler_reacts_to_foreign_frames_only() {
        let mut babbler = BabblingNode::new(NodeId::new(5), FrameId::new(0x700));
        let mut ctx = NodeContext::default();
        let own = Frame {
            id: FrameId::new(0x700),
            sender: NodeId::new(5),
            payload: Payload::Custom(0),
            tick: crate::Ticks::new(1),
        };
        babbler.on_frame(&own, &mut ctx);
        assert_eq!(ctx.outbox.len(), 0, "must not react to itself");
        let foreign = Frame {
            sender: NodeId::new(1),
            ..own
        };
        babbler.on_frame(&foreign, &mut ctx);
        assert_eq!(ctx.outbox.len(), 1);
        assert_eq!(babbler.sent(), 1);
    }

    #[test]
    fn recorder_extracts_measurements() {
        let mut r = RecorderNode::new(NodeId::new(1));
        let frame = Frame {
            id: FrameId::new(2),
            sender: NodeId::new(0),
            payload: Payload::Measurement {
                sensor: 7,
                interval: iv(1.0, 2.0),
            },
            tick: crate::Ticks::new(1),
        };
        let mut ctx = NodeContext::default();
        r.on_frame(&frame, &mut ctx);
        r.on_frame(
            &Frame {
                id: FrameId::new(3),
                sender: NodeId::new(2),
                payload: Payload::Custom(9),
                tick: crate::Ticks::new(2),
            },
            &mut ctx,
        );
        assert_eq!(r.frames().len(), 2);
        assert_eq!(r.measurements(), vec![(7, iv(1.0, 2.0))]);
    }
}
