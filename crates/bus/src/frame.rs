//! Frames and bus time.

use core::fmt;

use arsf_interval::Interval;

use crate::NodeId;

/// Bus time in abstract ticks.
///
/// # Example
///
/// ```
/// use arsf_bus::Ticks;
///
/// let t = Ticks::new(5) + Ticks::new(3);
/// assert_eq!(t.value(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ticks(u64);

impl Ticks {
    /// Creates a tick count.
    pub fn new(value: u64) -> Self {
        Self(value)
    }

    /// The raw tick count.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl core::ops::Add for Ticks {
    type Output = Ticks;

    fn add(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 + rhs.0)
    }
}

impl fmt::Display for Ticks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A CAN-style frame identifier: numerically **lower ids win
/// arbitration** (dominant bits), exactly as on a real CAN bus.
///
/// # Example
///
/// ```
/// use arsf_bus::FrameId;
///
/// assert!(FrameId::new(0x10) < FrameId::new(0x20)); // 0x10 wins
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(u32);

impl FrameId {
    /// Creates a frame id.
    pub fn new(id: u32) -> Self {
        Self(id)
    }

    /// The raw id.
    pub fn value(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:03X}", self.0)
    }
}

/// What a frame carries.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Payload {
    /// One sensor's abstract measurement interval.
    Measurement {
        /// The logical sensor index the measurement belongs to.
        sensor: usize,
        /// The abstract interval.
        interval: Interval<f64>,
    },
    /// The controller's fused interval for the round.
    Fusion {
        /// The fused interval.
        interval: Interval<f64>,
    },
    /// The controller flags a sensor as compromised.
    Alert {
        /// The flagged sensor index.
        sensor: usize,
    },
    /// Application-defined content.
    Custom(u64),
}

/// One broadcast frame: id, sender, payload and the tick it hit the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Arbitration id.
    pub id: FrameId,
    /// The transmitting node.
    pub sender: NodeId,
    /// The content.
    pub payload: Payload,
    /// When the frame was broadcast.
    pub tick: Ticks,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_arithmetic_and_display() {
        let t = Ticks::new(2) + Ticks::new(40);
        assert_eq!(t.value(), 42);
        assert_eq!(t.to_string(), "t42");
        assert!(Ticks::new(1) < Ticks::new(2));
    }

    #[test]
    fn frame_id_ordering_is_can_arbitration() {
        assert!(FrameId::new(1) < FrameId::new(2));
        assert_eq!(FrameId::new(0x7FF).to_string(), "0x7FF");
    }

    #[test]
    fn payload_variants_carry_data() {
        let m = Payload::Measurement {
            sensor: 3,
            interval: Interval::new(0.0, 1.0).unwrap(),
        };
        assert!(matches!(m, Payload::Measurement { sensor: 3, .. }));
        let a = Payload::Alert { sensor: 1 };
        assert!(matches!(a, Payload::Alert { sensor: 1 }));
    }
}
