//! The node interface.

use core::fmt;

use crate::{Frame, FrameId, Payload, Ticks};

/// Identity of a component on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id from a dense index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The dense index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The transmit interface handed to nodes during callbacks.
///
/// Frames queued here enter arbitration at the current slot boundary;
/// nothing reaches the wire until the bus arbitrates.
#[derive(Debug, Default)]
pub struct NodeContext {
    pub(crate) outbox: Vec<(FrameId, Payload)>,
    pub(crate) now: Ticks,
}

impl NodeContext {
    /// Queues a frame for transmission.
    pub fn transmit(&mut self, id: FrameId, payload: Payload) {
        self.outbox.push((id, payload));
    }

    /// The current bus time.
    pub fn now(&self) -> Ticks {
        self.now
    }
}

/// A component connected to the broadcast bus.
///
/// All methods are infallible: a node that cannot act simply does
/// nothing. Nodes see *every* frame — broadcast is what gives the paper's
/// attacker her information advantage.
pub trait Node {
    /// This node's identity.
    fn id(&self) -> NodeId;

    /// Called for every frame on the wire, including this node's own.
    fn on_frame(&mut self, frame: &Frame, ctx: &mut NodeContext);

    /// Called when this node's TDMA slot opens.
    fn on_slot(&mut self, ctx: &mut NodeContext);

    /// Upcast for downcasting concrete node types back out of the bus
    /// (implement as `self`).
    fn as_any(&self) -> &dyn core::any::Any;

    /// Mutable upcast (implement as `self`).
    fn as_any_mut(&mut self) -> &mut dyn core::any::Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::new(4).to_string(), "n4");
        assert_eq!(NodeId::new(4).index(), 4);
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    fn context_queues_frames() {
        let mut ctx = NodeContext::default();
        ctx.transmit(FrameId::new(5), Payload::Custom(7));
        ctx.transmit(FrameId::new(3), Payload::Custom(8));
        assert_eq!(ctx.outbox.len(), 2);
        assert_eq!(ctx.now(), Ticks::new(0));
    }
}
