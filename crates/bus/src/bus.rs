//! The deterministic broadcast event loop.

use crate::{Frame, Node, NodeContext, NodeId, Ticks};

/// A shared broadcast bus with TDMA slots and CAN-style arbitration.
///
/// Execution model per slot:
///
/// 1. the slot owner's [`Node::on_slot`] runs and may queue frames,
/// 2. all queued frames (the owner's plus any queued by other nodes
///    during earlier deliveries — e.g. a babbling node) are **arbitrated**:
///    lower [`crate::FrameId`] first, ties broken by sender id,
/// 3. frames hit the wire one tick apart and each is delivered to every
///    node (including the sender) via [`Node::on_frame`]; deliveries may
///    queue further frames, which transmit in the *next* slot.
///
/// The loop is single-threaded and deterministic: same nodes, same
/// slots, same frames.
#[derive(Default)]
pub struct BroadcastBus {
    nodes: Vec<Box<dyn Node>>,
    pending: Vec<(crate::FrameId, crate::Payload, NodeId)>,
    log: Vec<Frame>,
    now: Ticks,
}

impl BroadcastBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Connects a node.
    ///
    /// # Panics
    ///
    /// Panics if a node with the same id is already connected.
    pub fn add_node(&mut self, node: Box<dyn Node>) {
        assert!(
            self.nodes.iter().all(|n| n.id() != node.id()),
            "duplicate node id {}",
            node.id()
        );
        self.nodes.push(node);
    }

    /// The number of connected nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The complete frame log since construction.
    pub fn log(&self) -> &[Frame] {
        &self.log
    }

    /// The current bus time.
    pub fn now(&self) -> Ticks {
        self.now
    }

    /// Mutable access to a node by id (for reading results out of
    /// controller nodes after a round).
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut Box<dyn Node>> {
        self.nodes.iter_mut().find(|n| n.id() == id)
    }

    /// Runs one slot for each listed owner, in order, returning the frames
    /// broadcast during the call (also appended to [`BroadcastBus::log`]).
    ///
    /// Slot owners that are not connected simply waste their slot.
    pub fn run_slots(&mut self, owners: &[NodeId]) -> Vec<Frame> {
        let start = self.log.len();
        for &owner in owners {
            self.run_one_slot(owner);
        }
        self.log[start..].to_vec()
    }

    fn run_one_slot(&mut self, owner: NodeId) {
        // 1. The owner transmits.
        let mut ctx = NodeContext {
            outbox: Vec::new(),
            now: self.now,
        };
        if let Some(node) = self.nodes.iter_mut().find(|n| n.id() == owner) {
            node.on_slot(&mut ctx);
        }
        for (id, payload) in ctx.outbox {
            self.pending.push((id, payload, owner));
        }

        // 2. Arbitration: lowest frame id wins; ties by sender id.
        self.pending
            .sort_by(|a, b| a.0.cmp(&b.0).then(a.2.cmp(&b.2)));
        let batch: Vec<_> = self.pending.drain(..).collect();

        // 3. Broadcast, one tick per frame; deliveries may queue frames
        //    for the next slot.
        for (id, payload, sender) in batch {
            self.now = self.now + Ticks::new(1);
            let frame = Frame {
                id,
                sender,
                payload,
                tick: self.now,
            };
            for node in &mut self.nodes {
                let mut delivery_ctx = NodeContext {
                    outbox: Vec::new(),
                    now: self.now,
                };
                node.on_frame(&frame, &mut delivery_ctx);
                let reactor = node.id();
                for (id, payload) in delivery_ctx.outbox {
                    self.pending.push((id, payload, reactor));
                }
            }
            self.log.push(frame);
        }
        // Advance time even for empty slots so rounds have stable length.
        self.now = self.now + Ticks::new(1);
    }
}

impl core::fmt::Debug for BroadcastBus {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BroadcastBus")
            .field("nodes", &self.nodes.len())
            .field("frames_logged", &self.log.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FixedSensorNode, FrameId, RecorderNode};
    use arsf_interval::Interval;

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn single_sensor_broadcasts_in_its_slot() {
        let mut bus = BroadcastBus::new();
        let mut s = FixedSensorNode::new(NodeId::new(0), FrameId::new(0x100), 0);
        s.set_reading(iv(1.0, 2.0));
        bus.add_node(Box::new(s));
        bus.add_node(Box::new(RecorderNode::new(NodeId::new(9))));
        let frames = bus.run_slots(&[NodeId::new(0)]);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].sender, NodeId::new(0));
        assert_eq!(bus.log().len(), 1);
    }

    #[test]
    fn empty_slot_produces_no_frames_but_advances_time() {
        let mut bus = BroadcastBus::new();
        bus.add_node(Box::new(RecorderNode::new(NodeId::new(0))));
        let before = bus.now();
        let frames = bus.run_slots(&[NodeId::new(5)]); // unconnected owner
        assert!(frames.is_empty());
        assert!(bus.now() > before);
    }

    #[test]
    fn recorder_sees_every_frame() {
        let mut bus = BroadcastBus::new();
        for i in 0..3 {
            let mut s = FixedSensorNode::new(NodeId::new(i), FrameId::new(0x100 + i as u32), i);
            s.set_reading(iv(i as f64, i as f64 + 1.0));
            bus.add_node(Box::new(s));
        }
        bus.add_node(Box::new(RecorderNode::new(NodeId::new(7))));
        bus.run_slots(&[NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
        let recorder = bus.node_mut(NodeId::new(7)).unwrap();
        let seen = recorder
            .as_any()
            .downcast_ref::<RecorderNode>()
            .unwrap()
            .frames()
            .len();
        assert_eq!(seen, 3);
    }

    #[test]
    fn arbitration_orders_by_frame_id_then_sender() {
        // Two sensors transmit in the same slot (node 1 babbles by
        // reacting to node 0's slot): here we simulate by giving both the
        // same owner slot via a custom sequence — simplest is two frames
        // queued in one slot from the same node.
        let mut bus = BroadcastBus::new();
        let mut s = FixedSensorNode::new(NodeId::new(0), FrameId::new(0x200), 0);
        s.set_reading(iv(0.0, 1.0));
        // Fixed sensors queue exactly one frame; to test arbitration we
        // use two sensors sharing one slot owner id is not allowed, so we
        // instead check ordering across the run_slots sequence.
        bus.add_node(Box::new(s));
        let mut s2 = FixedSensorNode::new(NodeId::new(1), FrameId::new(0x080), 1);
        s2.set_reading(iv(1.0, 2.0));
        bus.add_node(Box::new(s2));
        let frames = bus.run_slots(&[NodeId::new(0), NodeId::new(1)]);
        // Slot order dominates here (TDMA): node 0 first despite higher id.
        assert_eq!(frames[0].sender, NodeId::new(0));
        assert_eq!(frames[1].sender, NodeId::new(1));
        assert!(frames[0].tick < frames[1].tick);
    }

    #[test]
    fn babbler_loses_arbitration_but_cannot_block_traffic() {
        use crate::{BabblingNode, Payload};
        let mut bus = BroadcastBus::new();
        let mut sensor = FixedSensorNode::new(NodeId::new(0), FrameId::new(0x100), 0);
        sensor.set_reading(iv(0.0, 1.0));
        bus.add_node(Box::new(sensor));
        // Low-priority babbler (high id): its frames sort last per slot.
        bus.add_node(Box::new(BabblingNode::new(
            NodeId::new(1),
            FrameId::new(0x700),
        )));
        let frames = bus.run_slots(&[NodeId::new(1), NodeId::new(0), NodeId::new(1)]);
        // The sensor's measurement made it onto the wire despite the
        // babble, and within its slot it won arbitration (lower id).
        let sensor_positions: Vec<usize> = frames
            .iter()
            .enumerate()
            .filter(|(_, f)| matches!(f.payload, Payload::Measurement { .. }))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(sensor_positions.len(), 1);
        // In the sensor's slot the babbler had a queued reaction frame;
        // arbitration put the measurement (0x100) before the babble
        // (0x700).
        let i = sensor_positions[0];
        if i + 1 < frames.len() {
            assert!(frames[i].id < frames[i + 1].id);
        }
        // The bus stayed live: babble frames flowed but bounded per slot.
        assert!(frames.len() >= 3);
    }

    #[test]
    fn high_priority_babbler_wins_the_wire_but_not_the_slot_structure() {
        use crate::{BabblingNode, Payload};
        let mut bus = BroadcastBus::new();
        let mut sensor = FixedSensorNode::new(NodeId::new(0), FrameId::new(0x100), 0);
        sensor.set_reading(iv(0.0, 1.0));
        bus.add_node(Box::new(sensor));
        // High-priority babbler (low id).
        bus.add_node(Box::new(BabblingNode::new(
            NodeId::new(1),
            FrameId::new(0x001),
        )));
        let frames = bus.run_slots(&[NodeId::new(1), NodeId::new(0)]);
        // The measurement still transmits: TDMA grants the slot, and a
        // queued babble frame merely precedes it on the wire.
        let measurements = frames
            .iter()
            .filter(|f| matches!(f.payload, Payload::Measurement { .. }))
            .count();
        assert_eq!(measurements, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn duplicate_node_ids_panic() {
        let mut bus = BroadcastBus::new();
        bus.add_node(Box::new(RecorderNode::new(NodeId::new(0))));
        bus.add_node(Box::new(RecorderNode::new(NodeId::new(0))));
    }

    #[test]
    fn debug_formatting_mentions_counts() {
        let bus = BroadcastBus::new();
        let s = format!("{bus:?}");
        assert!(s.contains("nodes"));
        assert!(s.contains("frames_logged"));
    }
}
