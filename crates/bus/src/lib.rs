//! A discrete-event shared broadcast bus (CAN-like).
//!
//! The paper's threat model hinges on one property of in-vehicle networks:
//! **messages are broadcast** — "in the presence of a shared bus where
//! messages are broadcast to all components connected to the network, the
//! attacker may consider all other measurements before sending her own".
//! This crate provides that substrate:
//!
//! * [`Frame`]/[`FrameId`]/[`Payload`] — CAN-flavoured frames where a
//!   numerically lower id wins arbitration,
//! * [`Node`] — the component interface: react to every broadcast frame,
//!   transmit in your TDMA slot,
//! * [`BroadcastBus`] — the deterministic event loop: per slot, the owner
//!   transmits, pending frames are arbitrated by id, and every frame is
//!   delivered to every node (including its sender),
//! * ready-made [`FixedSensorNode`] and [`RecorderNode`] for tests and
//!   custom topologies; the fusion controller and attacker nodes live in
//!   `arsf-core`, wired on top of this substrate.
//!
//! # Example
//!
//! ```
//! use arsf_bus::{BroadcastBus, FixedSensorNode, FrameId, NodeId, Payload, RecorderNode};
//! use arsf_interval::Interval;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut bus = BroadcastBus::new();
//! let mut sensor = FixedSensorNode::new(NodeId::new(0), FrameId::new(10), 0);
//! sensor.set_reading(Interval::new(9.5, 10.5)?);
//! bus.add_node(Box::new(sensor));
//! bus.add_node(Box::new(RecorderNode::new(NodeId::new(1))));
//! let frames = bus.run_slots(&[NodeId::new(0)]);
//! assert_eq!(frames.len(), 1);
//! assert!(matches!(frames[0].payload, Payload::Measurement { sensor: 0, .. }));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod frame;
mod node;
mod nodes;

pub use bus::BroadcastBus;
pub use frame::{Frame, FrameId, Payload, Ticks};
pub use node::{Node, NodeContext, NodeId};
pub use nodes::{BabblingNode, FixedSensorNode, RecorderNode};
