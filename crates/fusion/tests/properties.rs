//! Property-based tests for the fusion crate: the paper's guarantees as
//! machine-checked invariants.

use arsf_fusion::bounds::{
    check_bounds, regime, static_theorem2_bound, theorem2_bound, BoundRegime,
};
use arsf_fusion::{brooks_iyengar, marzullo, naive};
use arsf_interval::ops::{hull_all, intersection_all};
use arsf_interval::Interval;
use proptest::prelude::*;

fn grid_interval() -> impl Strategy<Value = Interval<i64>> {
    (-60_i64..60, 0_i64..40)
        .prop_map(|(lo, w)| Interval::new(lo, lo + w).expect("ordered by construction"))
}

fn configs() -> impl Strategy<Value = (Vec<Interval<i64>>, usize)> {
    prop::collection::vec(grid_interval(), 1..=9).prop_flat_map(|xs| {
        let n = xs.len();
        (Just(xs), 0..n)
    })
}

/// A family of intervals all containing a common "true value", plus a
/// number of unconstrained (possibly faulty) intervals.
fn truth_anchored() -> impl Strategy<Value = (Vec<Interval<i64>>, Vec<Interval<i64>>, i64)> {
    (
        -20_i64..20,
        prop::collection::vec((0_i64..30, 0_i64..30), 1..=6),
        prop::collection::vec(grid_interval(), 0..=3),
    )
        .prop_map(|(truth, correct_shapes, faulty)| {
            let correct: Vec<Interval<i64>> = correct_shapes
                .into_iter()
                .map(|(left, right)| Interval::new(truth - left, truth + right).expect("ordered"))
                .collect();
            (correct, faulty, truth)
        })
}

proptest! {
    #[test]
    fn sweep_equals_naive_reference((xs, f) in configs()) {
        prop_assert_eq!(marzullo::fuse(&xs, f), naive::fuse(&xs, f));
    }

    #[test]
    fn fusion_is_monotone_in_f(xs in prop::collection::vec(grid_interval(), 1..=9)) {
        let mut prev: Option<Interval<i64>> = None;
        for f in 0..xs.len() {
            let cur = marzullo::fuse(&xs, f).ok();
            if let (Some(p), Some(c)) = (prev, cur) {
                prop_assert!(c.contains_interval(&p), "f went {p} -> {c}");
            }
            if cur.is_some() {
                prev = cur;
            }
        }
    }

    #[test]
    fn f_extremes_are_intersection_and_hull(xs in prop::collection::vec(grid_interval(), 1..=9)) {
        match intersection_all(&xs) {
            Some(i) => prop_assert_eq!(marzullo::fuse(&xs, 0).unwrap(), i),
            None => prop_assert!(marzullo::fuse(&xs, 0).is_err()),
        }
        prop_assert_eq!(
            marzullo::fuse(&xs, xs.len() - 1).unwrap(),
            hull_all(&xs).unwrap()
        );
    }

    #[test]
    fn fusion_contains_truth_under_fault_assumption(
        (correct, faulty, truth) in truth_anchored()
    ) {
        // As long as the number of unconstrained intervals is assumed as f,
        // the fusion interval must contain the true value.
        let mut all = correct.clone();
        all.extend(faulty.iter().copied());
        let f = faulty.len();
        if f < all.len() {
            let fused = marzullo::fuse(&all, f).expect(
                "correct intervals share the truth, so coverage n-f is reachable",
            );
            prop_assert!(fused.contains(truth));
        }
    }

    #[test]
    fn fusion_width_never_below_best_correct_information(
        (correct, _faulty, _truth) in truth_anchored()
    ) {
        // Fusing only correct intervals with f = 0 gives the tightest
        // possible interval; any nonzero fault allowance must be at least
        // as wide.
        let base = marzullo::fuse(&correct, 0).unwrap();
        for f in 1..correct.len() {
            let wider = marzullo::fuse(&correct, f).unwrap();
            prop_assert!(wider.width() >= base.width());
        }
    }

    #[test]
    fn theorem2_bound_holds(
        (correct, faulty, _truth) in truth_anchored()
    ) {
        // Theorem 2: |S_{N,f}| <= sum of two widest correct widths, for
        // f < ceil(n/2) and fa <= f.
        prop_assume!(correct.len() >= 2);
        let mut all = correct.clone();
        all.extend(faulty.iter().copied());
        let n = all.len();
        let f = faulty.len();
        prop_assume!(f < n.div_ceil(2));
        let report = check_bounds(&all, &(0..correct.len()).collect::<Vec<_>>(), f).unwrap();
        prop_assert!(report.holds, "bound report: {:?}", report);
    }

    #[test]
    fn marzullo_width_bounds_by_regime(
        (correct, faulty, _truth) in truth_anchored()
    ) {
        let mut all = correct.clone();
        all.extend(faulty.iter().copied());
        let n = all.len();
        let f = faulty.len();
        prop_assume!(f < n);
        let Ok(fused) = marzullo::fuse(&all, f) else { return Ok(()); };
        match regime(n, f) {
            BoundRegime::CorrectWidthBounded => {
                let max_correct = correct.iter().map(|s| s.width()).max().unwrap();
                prop_assert!(fused.width() <= max_correct);
            }
            BoundRegime::SomeWidthBounded => {
                let max_any = all.iter().map(|s| s.width()).max().unwrap();
                prop_assert!(fused.width() <= max_any);
            }
            BoundRegime::Unbounded => {}
        }
    }

    #[test]
    fn brooks_iyengar_estimate_inside_marzullo_interval((xs, f) in configs()) {
        if let Ok(out) = brooks_iyengar::fuse(&xs, f) {
            let mz = marzullo::fuse(&xs, f).unwrap();
            prop_assert_eq!(out.interval, mz);
            prop_assert!(mz.to_f64_interval().contains(out.estimate));
        }
    }

    #[test]
    fn brooks_iyengar_regions_are_sorted_and_supported((xs, f) in configs()) {
        if let Ok(out) = brooks_iyengar::fuse(&xs, f) {
            let required = xs.len() - f;
            for (r, support) in &out.regions {
                prop_assert!(*support >= required);
                // Support equals true coverage at the region's midpoint
                // (or at the point itself for degenerate regions).
                let probe = r.midpoint();
                let cov = xs.iter().filter(|s| s.contains(probe)).count();
                prop_assert!(cov >= required);
            }
            for w in out.regions.windows(2) {
                prop_assert!(w[0].0.hi() <= w[1].0.lo());
            }
        }
    }

    #[test]
    fn engine_facing_fusers_error_cleanly_never_panic(
        xs in prop::collection::vec(grid_interval(), 0..=8),
        f in 0_usize..10,
    ) {
        // The clamp_f audit as a property: every stock fuser behind the
        // engine-facing trait, fed any round — including the
        // all-sensors-silenced empty one — either fuses or returns a
        // FusionError. Empty input is always EmptyInput; the clamp makes
        // FaultCountTooLarge unreachable.
        use arsf_fusion::historical::{DynamicsBound, HistoricalFuser};
        use arsf_fusion::{
            BrooksIyengarFuser, Fuser, FusionError, HullFuser, IntersectionFuser,
            InverseVarianceFuser, MarzulloFuser, MidpointMedianFuser,
        };
        let round: Vec<Interval<f64>> = xs.iter().map(|s| s.to_f64_interval()).collect();
        let mut fusers: Vec<Box<dyn Fuser<f64>>> = vec![
            Box::new(MarzulloFuser::new(f)),
            Box::new(BrooksIyengarFuser::new(f)),
            Box::new(IntersectionFuser),
            Box::new(HullFuser),
            Box::new(InverseVarianceFuser),
            Box::new(MidpointMedianFuser),
            Box::new(HistoricalFuser::new(f, DynamicsBound::new(1.0), 0.1)),
        ];
        for fuser in &mut fusers {
            let name = fuser.name().to_string();
            match fuser.fuse(&round) {
                Ok(fused) => {
                    prop_assert!(!round.is_empty(), "{} fused an empty round", name);
                    prop_assert!(fused.width() >= 0.0);
                }
                Err(FusionError::EmptyInput) => {
                    prop_assert!(round.is_empty(), "{} spurious EmptyInput", name);
                }
                Err(FusionError::NoAgreement { .. }) => {
                    prop_assert!(!round.is_empty(), "{} NoAgreement on empty", name);
                }
                Err(err) => {
                    prop_assert!(false, "{} leaked {:?} through the clamp", name, err);
                }
            }
        }
    }

    #[test]
    fn check_bounds_verdicts_are_consistent_with_the_regime(
        (correct, faulty, _truth) in truth_anchored(),
        f in 0_usize..10,
    ) {
        // For *any* n/f pairing — including f below or above the actual
        // number of faulty intervals — the checker must classify the
        // configuration exactly as `regime()` does, and whenever the
        // paper's assumptions genuinely hold (faulty count within f) the
        // verdict must be that the bounds hold.
        let mut all = correct.clone();
        all.extend(faulty.iter().copied());
        let n = all.len();
        let Ok(report) = check_bounds(&all, &(0..correct.len()).collect::<Vec<_>>(), f) else {
            return Ok(());
        };
        prop_assert_eq!(report.regime, regime(n, f));
        prop_assert_eq!(report.theorem2, theorem2_bound(&correct));
        if faulty.len() <= f {
            prop_assert!(report.holds, "assumptions hold but report {:?}", report);
        }
        if report.regime == BoundRegime::Unbounded && report.theorem2.is_none() {
            // No claim is made, so no claim can fail.
            prop_assert!(report.holds);
        }
    }

    #[test]
    fn theorem2_bound_is_monotone_in_the_two_widest(
        (correct, _faulty, _truth) in truth_anchored(),
        grow in 1_i64..25,
    ) {
        // Widening any correct interval — in particular either of the
        // two widest — never shrinks the Theorem-2 bound; widening one
        // of the two widest grows it by exactly the increment.
        prop_assume!(correct.len() >= 2);
        let base = theorem2_bound(&correct).unwrap();
        let widest = (0..correct.len())
            .max_by_key(|&i| correct[i].width())
            .unwrap();
        for i in 0..correct.len() {
            let mut widened = correct.clone();
            widened[i] =
                Interval::new(widened[i].lo() - grow, widened[i].hi()).unwrap();
            let grown = theorem2_bound(&widened).unwrap();
            prop_assert!(grown >= base, "widening {i} shrank {base} -> {grown}");
            if i == widest {
                prop_assert_eq!(grown, base + grow);
            }
        }
    }

    #[test]
    fn static_theorem2_matches_the_interval_form(
        widths in prop::collection::vec(0.0_f64..50.0, 2..=9),
    ) {
        // The width-only form agrees with the interval form on any
        // concrete intervals realising those widths.
        let intervals: Vec<Interval<f64>> = widths
            .iter()
            .map(|&w| Interval::new(0.0, w).unwrap())
            .collect();
        prop_assert_eq!(static_theorem2_bound(&widths), theorem2_bound(&intervals));
    }

    #[test]
    fn fusion_is_permutation_invariant((xs, f) in configs()) {
        let mut reversed = xs.clone();
        reversed.reverse();
        prop_assert_eq!(marzullo::fuse(&xs, f), marzullo::fuse(&reversed, f));
    }

    #[test]
    fn fusion_is_translation_equivariant((xs, f) in configs(), d in -40_i64..40) {
        let shifted: Vec<Interval<i64>> =
            xs.iter().map(|s| s.translate(d).unwrap()).collect();
        match (marzullo::fuse(&xs, f), marzullo::fuse(&shifted, f)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.translate(d).unwrap(), b);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "mismatch {:?} vs {:?}", a, b),
        }
    }
}
