//! Naive `O(n²)` reference implementation of Marzullo fusion.
//!
//! Coverage of the real line by closed intervals can only change at
//! interval endpoints, so it suffices to evaluate the coverage at every
//! endpoint by brute force and take the span of those with coverage at
//! least `n − f`. This implementation is deliberately simple — no sweep, no
//! sorting tricks — and serves as the oracle against which the production
//! sweep ([`crate::marzullo::fuse`]) is validated in tests, property tests
//! and the `fusion_scaling` benchmark.

use arsf_interval::{Interval, Scalar};

use crate::FusionError;

/// Computes the fusion interval by brute-force endpoint enumeration.
///
/// Semantically identical to [`crate::marzullo::fuse`] but `O(n²)`.
///
/// # Errors
///
/// Same contract as [`crate::marzullo::fuse`].
///
/// # Example
///
/// ```
/// use arsf_fusion::{marzullo, naive};
/// use arsf_interval::Interval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let s = [
///     Interval::new(0.0, 4.0)?,
///     Interval::new(1.0, 5.0)?,
///     Interval::new(3.0, 8.0)?,
/// ];
/// assert_eq!(naive::fuse(&s, 1)?, marzullo::fuse(&s, 1)?);
/// # Ok(())
/// # }
/// ```
pub fn fuse<T: Scalar>(intervals: &[Interval<T>], f: usize) -> Result<Interval<T>, FusionError> {
    let n = intervals.len();
    if n == 0 {
        return Err(FusionError::EmptyInput);
    }
    if f >= n {
        return Err(FusionError::FaultCountTooLarge { f, n });
    }
    let required = n - f;

    let mut lo: Option<T> = None;
    let mut hi: Option<T> = None;
    for s in intervals {
        for x in [s.lo(), s.hi()] {
            let coverage = intervals.iter().filter(|t| t.contains(x)).count();
            if coverage >= required {
                lo = Some(match lo {
                    Some(cur) => cur.min_scalar(x),
                    None => x,
                });
                hi = Some(match hi {
                    Some(cur) => cur.max_scalar(x),
                    None => x,
                });
            }
        }
    }
    match (lo, hi) {
        (Some(lo), Some(hi)) => Ok(Interval::new(lo, hi)
            .unwrap_or_else(|_| unreachable!("min <= max over the same candidate set"))),
        _ => Err(FusionError::NoAgreement { required }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marzullo;

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn matches_sweep_on_fixed_cases() {
        let cases: Vec<Vec<Interval<f64>>> = vec![
            vec![iv(0.0, 1.0)],
            vec![iv(0.0, 1.0), iv(1.0, 2.0)],
            vec![iv(0.0, 6.0), iv(1.0, 7.0), iv(4.0, 8.0), iv(5.0, 10.0)],
            vec![iv(0.0, 2.0), iv(1.0, 2.0), iv(4.0, 6.0), iv(5.0, 6.0)],
            vec![iv(0.0, 0.0), iv(0.0, 0.0), iv(-1.0, 1.0)],
        ];
        for s in &cases {
            for f in 0..s.len() {
                assert_eq!(fuse(s, f), marzullo::fuse(s, f), "case {s:?}, f = {f}");
            }
        }
    }

    #[test]
    fn same_errors_as_sweep() {
        assert_eq!(fuse::<f64>(&[], 0), Err(FusionError::EmptyInput));
        let s = [iv(0.0, 1.0), iv(5.0, 6.0)];
        assert_eq!(fuse(&s, 0), Err(FusionError::NoAgreement { required: 2 }));
        assert_eq!(
            fuse(&s, 2),
            Err(FusionError::FaultCountTooLarge { f: 2, n: 2 })
        );
    }

    #[test]
    fn endpoint_coverage_is_sufficient() {
        // The extreme points of the >= k region are always interval
        // endpoints; a case where the region boundary is interior to no
        // interval would be a bug.
        let s = [iv(0.0, 10.0), iv(2.0, 3.0), iv(2.5, 7.0)];
        assert_eq!(fuse(&s, 1).unwrap(), iv(2.0, 7.0));
    }
}
