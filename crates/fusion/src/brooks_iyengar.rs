//! The Brooks–Iyengar hybrid fusion algorithm (baseline).
//!
//! Brooks & Iyengar's "robust distributed computing and sensing algorithm"
//! (IEEE *Computer*, 1996) is the precision-improving relaxation of
//! Marzullo's algorithm cited by the paper as related work. It computes the
//! same `≥ n − f` coverage regions but additionally returns a *weighted
//! point estimate*: the mean of the regions' midpoints weighted by how many
//! sensors support each region.
//!
//! We implement it as a baseline fuser so the benchmark harness can compare
//! attack impact on Marzullo fusion, Brooks–Iyengar fusion and naive
//! probabilistic averaging.

use arsf_interval::coverage::CoverageMap;
use arsf_interval::{Interval, Scalar};

use crate::FusionError;

/// The result of running the Brooks–Iyengar algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct BrooksIyengarOutput<T> {
    /// The fused interval: the span from the first to the last region with
    /// sufficient support (identical to Marzullo's fusion interval).
    pub interval: Interval<T>,
    /// The weighted point estimate (always inside `interval`).
    pub estimate: f64,
    /// The maximal constant-coverage regions with support `≥ n − f` that
    /// contributed to the estimate, with their support counts.
    pub regions: Vec<(Interval<T>, usize)>,
}

/// Runs the Brooks–Iyengar algorithm on `intervals` assuming at most `f`
/// faulty sensors.
///
/// # Errors
///
/// Same contract as [`crate::marzullo::fuse`]: empty input, `f ≥ n`, or no
/// point reaching the required coverage.
///
/// # Example
///
/// ```
/// use arsf_fusion::brooks_iyengar::fuse;
/// use arsf_interval::Interval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let s = [
///     Interval::new(2.7, 6.7)?,
///     Interval::new(0.0, 3.2)?,
///     Interval::new(1.5, 4.5)?,
/// ];
/// let out = fuse(&s, 1)?;
/// assert!(out.interval.contains(out.estimate));
/// # Ok(())
/// # }
/// ```
pub fn fuse<T: Scalar>(
    intervals: &[Interval<T>],
    f: usize,
) -> Result<BrooksIyengarOutput<T>, FusionError> {
    let n = intervals.len();
    if n == 0 {
        return Err(FusionError::EmptyInput);
    }
    if f >= n {
        return Err(FusionError::FaultCountTooLarge { f, n });
    }
    let required = n - f;

    let map = CoverageMap::build(intervals);
    let breakpoints = map.breakpoints();

    // Enumerate elementary pieces (breakpoints and the open segments
    // between them) with coverage >= required, then merge consecutive
    // pieces of equal support into maximal constant-coverage regions.
    let mut regions: Vec<(Interval<T>, usize)> = Vec::new();
    let push_piece =
        |piece: Interval<T>, support: usize, regions: &mut Vec<(Interval<T>, usize)>| {
            if let Some((last, last_support)) = regions.last_mut() {
                if *last_support == support && last.hi() == piece.lo() {
                    *last = Interval::new(last.lo(), piece.hi())
                        .unwrap_or_else(|_| unreachable!("merged regions keep endpoint order"));
                    return;
                }
            }
            regions.push((piece, support));
        };

    let point_cov = map.point_coverages();
    let seg_cov = map.segment_coverages();
    for (i, &p) in breakpoints.iter().enumerate() {
        let at_point = point_cov[i];
        if at_point >= required {
            push_piece(
                Interval::new(p, p)
                    .unwrap_or_else(|_| unreachable!("a degenerate interval is ordered")),
                at_point,
                &mut regions,
            );
        }
        if i + 1 < breakpoints.len() && seg_cov[i] >= required {
            let q = breakpoints[i + 1];
            push_piece(
                Interval::new(p, q).unwrap_or_else(|_| unreachable!("breakpoints are sorted")),
                seg_cov[i],
                &mut regions,
            );
        }
    }

    if regions.is_empty() {
        return Err(FusionError::NoAgreement { required });
    }

    // The fused interval spans every qualifying point, degenerate regions
    // included, so it always equals Marzullo's fusion interval.
    let lo = regions[0].0.lo();
    let hi = regions[regions.len() - 1].0.hi();
    let interval = Interval::new(lo, hi).unwrap_or_else(|_| unreachable!("regions are sorted"));

    // The weighted point estimate uses positive-measure regions when any
    // exist (a zero-width region sandwiched inside wider agreement carries
    // no extra information); an all-degenerate profile falls back to the
    // support-weighted mean of the points themselves.
    let mut weighted: Vec<(Interval<T>, usize)> = regions
        .iter()
        .copied()
        .filter(|(r, _)| r.width() > T::ZERO)
        .collect();
    if weighted.is_empty() {
        weighted = regions.clone();
    }
    let mut weight_sum = 0.0;
    let mut weighted_mid = 0.0;
    for (r, support) in &weighted {
        let w = *support as f64;
        weight_sum += w;
        weighted_mid += w * r.midpoint().to_f64();
    }
    let estimate = weighted_mid / weight_sum;

    Ok(BrooksIyengarOutput {
        interval,
        estimate,
        regions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marzullo;

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn interval_matches_marzullo() {
        let cases: Vec<Vec<Interval<f64>>> = vec![
            vec![iv(0.0, 4.0), iv(1.0, 5.0), iv(3.0, 8.0)],
            vec![iv(0.0, 6.0), iv(1.0, 7.0), iv(4.0, 8.0), iv(5.0, 10.0)],
            vec![iv(0.0, 2.0), iv(1.0, 2.0), iv(4.0, 6.0), iv(5.0, 6.0)],
        ];
        for s in &cases {
            for f in 0..s.len().div_ceil(2) {
                let bi = fuse(s, f);
                let mz = marzullo::fuse(s, f);
                match (bi, mz) {
                    (Ok(bi), Ok(mz)) => assert_eq!(bi.interval, mz, "case {s:?} f={f}"),
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    (a, b) => panic!("mismatch {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn estimate_lies_within_interval() {
        let s = [iv(2.7, 6.7), iv(0.0, 3.2), iv(1.5, 4.5)];
        let out = fuse(&s, 1).unwrap();
        assert!(out.interval.contains(out.estimate));
    }

    #[test]
    fn estimate_weighs_higher_support_regions_more() {
        // Two regions with >= 2 coverage: [1,2] supported by 3 sensors
        // and [5,6] supported by 2; the estimate must lean towards [1,2].
        let s = [iv(0.0, 2.0), iv(1.0, 2.0), iv(1.0, 6.0), iv(5.0, 7.0)];
        let out = fuse(&s, 2).unwrap();
        let naive_mid = out.interval.midpoint();
        assert!(out.estimate < naive_mid);
    }

    #[test]
    fn classic_paper_example_structure() {
        // Four sensors, one fault: overlapping chain. The regions must be
        // sorted, disjoint-or-touching, and each supported by >= 3 sensors.
        let s = [iv(0.0, 4.0), iv(1.0, 5.0), iv(2.0, 6.0), iv(3.0, 7.0)];
        let out = fuse(&s, 1).unwrap();
        for (r, support) in &out.regions {
            assert!(*support >= 3, "region {r} support {support}");
        }
        for w in out.regions.windows(2) {
            assert!(w[0].0.hi() <= w[1].0.lo());
        }
    }

    #[test]
    fn single_point_agreement() {
        let s = [iv(0.0, 1.0), iv(1.0, 2.0)];
        let out = fuse(&s, 0).unwrap();
        assert_eq!(out.interval, iv(1.0, 1.0));
        assert_eq!(out.estimate, 1.0);
    }

    #[test]
    fn errors_match_contract() {
        assert_eq!(fuse::<f64>(&[], 0).unwrap_err(), FusionError::EmptyInput);
        let s = [iv(0.0, 1.0), iv(3.0, 4.0)];
        assert_eq!(
            fuse(&s, 0).unwrap_err(),
            FusionError::NoAgreement { required: 2 }
        );
    }
}
