//! Marzullo's fault-tolerant sensor fusion algorithm.
//!
//! Given `n` abstract-sensor intervals and an assumed number of faulty
//! sensors `f`, the **fusion interval** `S_{N,f}` spans the smallest to the
//! largest point of the real line contained in at least `n − f` intervals.
//! The rationale is conservative: at least `n − f` intervals are correct
//! and every correct interval contains the true value, so any point covered
//! by `n − f` intervals *could* be the true value and must be kept.
//!
//! Key facts from the paper (all verified by this crate's test-suite):
//!
//! * `f = 0` ⇒ fusion is the common intersection; `f = n − 1` ⇒ the hull,
//! * the fusion interval grows monotonically with `f` (Fig. 1),
//! * if `f < ⌈n/3⌉` the width is bounded by some **correct** interval's
//!   width; if `f < ⌈n/2⌉` by some interval's width; for `f ≥ ⌈n/2⌉` it can
//!   be arbitrarily large — hence [`max_bounded_f`] and the paper's
//!   standing assumption `f < ⌈n/2⌉`,
//! * when at most `f` sensors are actually faulty, the fusion interval
//!   contains the true value.

use arsf_interval::coverage::k_covered_span;
use arsf_interval::{Interval, Scalar};

use crate::FusionError;

/// Computes Marzullo's fusion interval for `intervals` under the assumption
/// that at most `f` of them are faulty.
///
/// Runs in `O(n log n)`.
///
/// # Errors
///
/// * [`FusionError::EmptyInput`] — `intervals` is empty.
/// * [`FusionError::FaultCountTooLarge`] — `f >= intervals.len()`.
/// * [`FusionError::NoAgreement`] — no point is covered by `n − f`
///   intervals; this proves the fault assumption was violated (more than
///   `f` sensors are faulty or compromised).
///
/// # Example
///
/// ```
/// use arsf_fusion::marzullo::fuse;
/// use arsf_interval::Interval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let s = [
///     Interval::new(9.0, 11.0)?,
///     Interval::new(9.5, 10.5)?,
///     Interval::new(17.0, 18.0)?, // faulty
/// ];
/// // Tolerating one fault keeps the two consistent sensors' overlap:
/// assert_eq!(fuse(&s, 1)?, Interval::new(9.5, 10.5)?);
/// # Ok(())
/// # }
/// ```
pub fn fuse<T: Scalar>(intervals: &[Interval<T>], f: usize) -> Result<Interval<T>, FusionError> {
    let n = intervals.len();
    if n == 0 {
        return Err(FusionError::EmptyInput);
    }
    if f >= n {
        return Err(FusionError::FaultCountTooLarge { f, n });
    }
    let required = n - f;
    k_covered_span(intervals, required).ok_or(FusionError::NoAgreement { required })
}

/// The largest fault assumption for which the paper's boundedness guarantee
/// holds: `⌈n/2⌉ − 1`, i.e. the largest `f` with `f < ⌈n/2⌉`.
///
/// The paper's evaluation always configures the fusion algorithm with this
/// value ("the sensor fusion algorithm configured for `f = ⌈n/2⌉ − 1`").
///
/// # Example
///
/// ```
/// use arsf_fusion::marzullo::max_bounded_f;
///
/// assert_eq!(max_bounded_f(3), 1);
/// assert_eq!(max_bounded_f(4), 1);
/// assert_eq!(max_bounded_f(5), 2);
/// assert_eq!(max_bounded_f(1), 0);
/// ```
pub fn max_bounded_f(n: usize) -> usize {
    n.div_ceil(2).saturating_sub(1)
}

/// Returns `true` when the fault assumption `f` keeps the fusion interval
/// bounded, i.e. `f < ⌈n/2⌉`.
///
/// # Example
///
/// ```
/// use arsf_fusion::marzullo::is_bounded_assumption;
///
/// assert!(is_bounded_assumption(5, 2));
/// assert!(!is_bounded_assumption(5, 3));
/// ```
pub fn is_bounded_assumption(n: usize, f: usize) -> bool {
    f < n.div_ceil(2)
}

/// A validated `(n, f)` fusion configuration.
///
/// Construction enforces the paper's standing assumption `f < ⌈n/2⌉`, so a
/// `FusionConfig` is a proof that fusion-interval widths are bounded by
/// some input interval's width (paper, Section II-A).
///
/// # Example
///
/// ```
/// use arsf_fusion::marzullo::FusionConfig;
/// use arsf_interval::Interval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = FusionConfig::new(5, 2).expect("2 < ceil(5/2)");
/// let sensors = [
///     Interval::new(0.0, 2.0)?,
///     Interval::new(1.0, 3.0)?,
///     Interval::new(1.5, 2.5)?,
///     Interval::new(1.0, 2.0)?,
///     Interval::new(40.0, 41.0)?,
/// ];
/// let fused = cfg.fuse(&sensors)?;
/// // Points in >= 3 of the 5 intervals form [1, 2].
/// assert_eq!(fused, Interval::new(1.0, 2.0)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FusionConfig {
    n: usize,
    f: usize,
}

impl FusionConfig {
    /// Creates a configuration for `n` sensors tolerating up to `f` faults.
    ///
    /// Returns `None` when `n == 0` or `f ≥ ⌈n/2⌉` (the regime where the
    /// fusion interval may be unbounded and may exclude the true value).
    pub fn new(n: usize, f: usize) -> Option<Self> {
        if n == 0 || !is_bounded_assumption(n, f) {
            return None;
        }
        Some(Self { n, f })
    }

    /// The configuration the paper's evaluation uses: `f = ⌈n/2⌉ − 1`.
    ///
    /// Returns `None` when `n == 0`.
    pub fn most_conservative(n: usize) -> Option<Self> {
        Self::new(n, max_bounded_f(n))
    }

    /// The number of sensors.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The assumed number of faulty sensors.
    pub fn f(&self) -> usize {
        self.f
    }

    /// The coverage requirement `n − f`.
    pub fn required_coverage(&self) -> usize {
        self.n - self.f
    }

    /// Runs Marzullo fusion on exactly `n` intervals.
    ///
    /// # Errors
    ///
    /// [`FusionError::FaultCountTooLarge`] if the slice length differs from
    /// the configured `n` (reported with the actual length), otherwise as
    /// [`fuse`].
    pub fn fuse<T: Scalar>(&self, intervals: &[Interval<T>]) -> Result<Interval<T>, FusionError> {
        if intervals.len() != self.n {
            return Err(FusionError::FaultCountTooLarge {
                f: self.f,
                n: intervals.len(),
            });
        }
        fuse(intervals, self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arsf_interval::ops::{hull_all, intersection_all};

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    /// The five-interval configuration used in our rendering of the
    /// paper's Fig. 1 (all intervals share the point 5 so every `f` row is
    /// defined).
    fn fig1_config() -> Vec<Interval<f64>> {
        vec![
            iv(0.0, 6.0),
            iv(1.0, 7.0),
            iv(4.0, 8.0),
            iv(5.0, 10.0),
            iv(3.0, 5.5),
        ]
    }

    #[test]
    fn empty_input_is_rejected() {
        assert_eq!(fuse::<f64>(&[], 0), Err(FusionError::EmptyInput));
    }

    #[test]
    fn fault_count_must_be_less_than_n() {
        let s = [iv(0.0, 1.0)];
        assert_eq!(
            fuse(&s, 1),
            Err(FusionError::FaultCountTooLarge { f: 1, n: 1 })
        );
        assert!(fuse(&s, 0).is_ok());
    }

    #[test]
    fn f_zero_is_common_intersection() {
        let s = fig1_config();
        assert_eq!(fuse(&s, 0).unwrap(), intersection_all(&s).unwrap());
    }

    #[test]
    fn f_n_minus_one_is_hull() {
        let s = fig1_config();
        assert_eq!(fuse(&s, s.len() - 1).unwrap(), hull_all(&s).unwrap());
    }

    #[test]
    fn fusion_grows_with_f_as_in_fig1() {
        let s = fig1_config();
        let s0 = fuse(&s, 0).unwrap();
        let s1 = fuse(&s, 1).unwrap();
        let s2 = fuse(&s, 2).unwrap();
        assert!(s1.contains_interval(&s0));
        assert!(s2.contains_interval(&s1));
        assert!(s1.width() >= s0.width());
        assert!(s2.width() >= s1.width());
    }

    #[test]
    fn disagreement_is_detected() {
        // Three mutually disjoint intervals: even f = 1 finds no pair
        // overlap.
        let s = [iv(0.0, 1.0), iv(2.0, 3.0), iv(4.0, 5.0)];
        assert_eq!(fuse(&s, 1), Err(FusionError::NoAgreement { required: 2 }));
        // f = 2 (>= ceil(3/2)) is mathematically computable: hull-like span.
        assert_eq!(fuse(&s, 2).unwrap(), iv(0.0, 5.0));
    }

    #[test]
    fn fusion_contains_truth_when_faults_within_assumption() {
        // Truth = 10; two correct sensors contain it, one faulty does not.
        let s = [iv(9.0, 11.0), iv(9.8, 10.4), iv(30.0, 31.0)];
        let fused = fuse(&s, 1).unwrap();
        assert!(fused.contains(10.0));
    }

    #[test]
    fn single_sensor_passthrough() {
        let s = [iv(1.0, 2.0)];
        assert_eq!(fuse(&s, 0).unwrap(), s[0]);
    }

    #[test]
    fn max_bounded_f_matches_paper_values() {
        // Paper: n in 3..=5 uses f = ceil(n/2) - 1 = 1, 1, 2.
        assert_eq!(max_bounded_f(3), 1);
        assert_eq!(max_bounded_f(4), 1);
        assert_eq!(max_bounded_f(5), 2);
        assert_eq!(max_bounded_f(2), 0);
        assert_eq!(max_bounded_f(0), 0);
    }

    #[test]
    fn config_rejects_unbounded_assumptions() {
        assert!(FusionConfig::new(0, 0).is_none());
        assert!(FusionConfig::new(4, 2).is_none());
        assert!(FusionConfig::new(5, 3).is_none());
        let cfg = FusionConfig::new(5, 2).unwrap();
        assert_eq!(cfg.required_coverage(), 3);
        assert_eq!((cfg.n(), cfg.f()), (5, 2));
    }

    #[test]
    fn config_checks_arity() {
        let cfg = FusionConfig::most_conservative(3).unwrap();
        assert_eq!(cfg.f(), 1);
        let err = cfg.fuse(&[iv(0.0, 1.0)]).unwrap_err();
        assert!(matches!(err, FusionError::FaultCountTooLarge { .. }));
    }

    #[test]
    fn integer_fusion() {
        let s = [
            Interval::new(0_i64, 6).unwrap(),
            Interval::new(2, 8).unwrap(),
            Interval::new(4, 10).unwrap(),
        ];
        assert_eq!(fuse(&s, 1).unwrap(), Interval::new(2_i64, 8).unwrap());
    }
}
