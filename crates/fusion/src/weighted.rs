//! Probabilistic point-fusion baselines.
//!
//! The paper's introduction contrasts interval fusion with the classical
//! probabilistic approach where each sensor reports a point corrupted by
//! noise of known distribution and fusion is a weighted average. These
//! estimators are implemented here as baselines; they are *not*
//! attack-resilient (a single forged reading shifts the mean arbitrarily),
//! which the benchmark harness demonstrates quantitatively.

use arsf_interval::{Interval, Scalar};

use crate::FusionError;

/// A fused point estimate with a symmetric uncertainty radius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointEstimate {
    /// The fused value.
    pub value: f64,
    /// A (non-negative) uncertainty radius around [`PointEstimate::value`].
    pub radius: f64,
}

impl PointEstimate {
    /// The estimate viewed as the interval `[value − radius, value + radius]`.
    pub fn to_interval(self) -> Interval<f64> {
        Interval::centered(self.value, self.radius)
            .unwrap_or_else(|_| unreachable!("radius is validated non-negative at construction"))
    }
}

/// Inverse-variance weighted mean of the interval midpoints, treating each
/// half-width as one standard deviation.
///
/// Zero-width (exact) intervals receive all the weight: if any are present,
/// the estimate is their plain average with radius 0.
///
/// # Errors
///
/// [`FusionError::EmptyInput`] when no intervals are given.
///
/// # Example
///
/// ```
/// use arsf_fusion::weighted::inverse_variance;
/// use arsf_interval::Interval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let s = [
///     Interval::centered(10.0, 1.0)?, // sigma 1
///     Interval::centered(12.0, 2.0)?, // sigma 2
/// ];
/// let est = inverse_variance(&s)?;
/// // The tighter sensor dominates: (10/1 + 12/4) / (1/1 + 1/4) = 10.4
/// assert!((est.value - 10.4).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn inverse_variance<T: Scalar>(
    intervals: &[Interval<T>],
) -> Result<PointEstimate, FusionError> {
    if intervals.is_empty() {
        return Err(FusionError::EmptyInput);
    }
    let exact: Vec<f64> = intervals
        .iter()
        .filter(|s| s.width() == T::ZERO)
        .map(|s| s.midpoint().to_f64())
        .collect();
    if !exact.is_empty() {
        let value = exact.iter().sum::<f64>() / exact.len() as f64;
        return Ok(PointEstimate { value, radius: 0.0 });
    }
    let mut weight_sum = 0.0;
    let mut weighted = 0.0;
    for s in intervals {
        let sigma = s.width().to_f64() * 0.5;
        let w = 1.0 / (sigma * sigma);
        weight_sum += w;
        weighted += w * s.midpoint().to_f64();
    }
    Ok(PointEstimate {
        value: weighted / weight_sum,
        radius: (1.0 / weight_sum).sqrt(),
    })
}

/// The unweighted mean of the interval midpoints, with radius equal to the
/// mean half-width.
///
/// # Errors
///
/// [`FusionError::EmptyInput`] when no intervals are given.
pub fn midpoint_mean<T: Scalar>(intervals: &[Interval<T>]) -> Result<PointEstimate, FusionError> {
    if intervals.is_empty() {
        return Err(FusionError::EmptyInput);
    }
    let n = intervals.len() as f64;
    let value = intervals.iter().map(|s| s.midpoint().to_f64()).sum::<f64>() / n;
    let radius = intervals
        .iter()
        .map(|s| s.width().to_f64() * 0.5)
        .sum::<f64>()
        / n;
    Ok(PointEstimate { value, radius })
}

/// The median of the interval midpoints — the classical robust location
/// estimator, tolerating up to `⌈n/2⌉ − 1` arbitrarily-corrupted readings.
///
/// The radius reported is the median half-width.
///
/// # Errors
///
/// [`FusionError::EmptyInput`] when no intervals are given.
///
/// # Example
///
/// ```
/// use arsf_fusion::weighted::midpoint_median;
/// use arsf_interval::Interval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let s = [
///     Interval::centered(10.0, 1.0)?,
///     Interval::centered(10.2, 1.0)?,
///     Interval::centered(500.0, 1.0)?, // forged
/// ];
/// // The forged outlier cannot drag the median away:
/// assert_eq!(midpoint_median(&s)?.value, 10.2);
/// # Ok(())
/// # }
/// ```
pub fn midpoint_median<T: Scalar>(intervals: &[Interval<T>]) -> Result<PointEstimate, FusionError> {
    if intervals.is_empty() {
        return Err(FusionError::EmptyInput);
    }
    let mut mids: Vec<f64> = intervals.iter().map(|s| s.midpoint().to_f64()).collect();
    let mut halves: Vec<f64> = intervals.iter().map(|s| s.width().to_f64() * 0.5).collect();
    Ok(PointEstimate {
        value: median_in_place(&mut mids),
        radius: median_in_place(&mut halves),
    })
}

fn median_in_place(xs: &mut [f64]) -> f64 {
    xs.sort_unstable_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ci(center: f64, radius: f64) -> Interval<f64> {
        Interval::centered(center, radius).unwrap()
    }

    #[test]
    fn all_estimators_reject_empty_input() {
        assert!(inverse_variance::<f64>(&[]).is_err());
        assert!(midpoint_mean::<f64>(&[]).is_err());
        assert!(midpoint_median::<f64>(&[]).is_err());
    }

    #[test]
    fn single_sensor_is_identity() {
        let s = [ci(10.0, 0.5)];
        for est in [
            inverse_variance(&s).unwrap(),
            midpoint_mean(&s).unwrap(),
            midpoint_median(&s).unwrap(),
        ] {
            assert_eq!(est.value, 10.0);
            assert_eq!(est.radius, 0.5);
        }
    }

    #[test]
    fn inverse_variance_prefers_precise_sensors() {
        let s = [ci(10.0, 1.0), ci(12.0, 2.0)];
        let est = inverse_variance(&s).unwrap();
        assert!((est.value - 10.4).abs() < 1e-9);
        assert!(est.radius < 1.0);
    }

    #[test]
    fn inverse_variance_with_exact_sensor() {
        let s = [ci(10.0, 0.0), ci(50.0, 1.0)];
        let est = inverse_variance(&s).unwrap();
        assert_eq!(est.value, 10.0);
        assert_eq!(est.radius, 0.0);
    }

    #[test]
    fn mean_is_attackable_median_is_not() {
        let honest = [ci(10.0, 1.0), ci(10.2, 1.0)];
        let attacked = [ci(10.0, 1.0), ci(10.2, 1.0), ci(1000.0, 1.0)];
        let mean_shift =
            midpoint_mean(&attacked).unwrap().value - midpoint_mean(&honest).unwrap().value;
        let median_shift =
            midpoint_median(&attacked).unwrap().value - midpoint_median(&honest).unwrap().value;
        assert!(mean_shift > 100.0);
        assert!(median_shift.abs() <= 0.2);
    }

    #[test]
    fn median_of_even_count_averages_middle_pair() {
        let s = [ci(1.0, 0.1), ci(2.0, 0.1), ci(3.0, 0.1), ci(10.0, 0.1)];
        assert_eq!(midpoint_median(&s).unwrap().value, 2.5);
    }

    #[test]
    fn point_estimate_to_interval_round_trip() {
        let est = PointEstimate {
            value: 5.0,
            radius: 1.5,
        };
        let iv = est.to_interval();
        assert_eq!(iv.lo(), 3.5);
        assert_eq!(iv.hi(), 6.5);
    }
}
