//! A uniform, object-safe interface over every interval fuser.
//!
//! The benchmark harness and the simulation pipeline need to swap fusion
//! algorithms behind one interface (e.g. comparing attack impact on
//! Marzullo vs Brooks–Iyengar vs plain intersection). [`Fuser`] is that
//! interface; it is object-safe so heterogeneous fusers can live in a
//! `Vec<Box<dyn Fuser<f64>>>`.

use arsf_interval::ops::{hull_all, intersection_all};
use arsf_interval::{Interval, Scalar};

use crate::{brooks_iyengar, marzullo, FusionError};

/// An interval-fusion algorithm: `n` sensor intervals in, one fused
/// interval out.
///
/// # Example
///
/// ```
/// use arsf_fusion::{Fuser, HullFuser, MarzulloFuser};
/// use arsf_interval::Interval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fusers: Vec<Box<dyn Fuser<f64>>> =
///     vec![Box::new(MarzulloFuser::new(1)), Box::new(HullFuser)];
/// let s = [
///     Interval::new(0.0, 2.0)?,
///     Interval::new(1.0, 3.0)?,
///     Interval::new(1.5, 2.5)?,
/// ];
/// for fuser in &fusers {
///     let fused = fuser.fuse(&s)?;
///     assert!(fused.width() <= 3.0);
/// }
/// # Ok(())
/// # }
/// ```
pub trait Fuser<T: Scalar> {
    /// Fuses the given intervals into one.
    ///
    /// # Errors
    ///
    /// Implementations return a [`FusionError`] when the input is empty or
    /// when their fault/agreement assumptions are violated.
    fn fuse(&self, intervals: &[Interval<T>]) -> Result<Interval<T>, FusionError>;

    /// A short human-readable name for reports and benchmark labels.
    fn name(&self) -> &str;
}

/// Marzullo's algorithm with a fixed fault assumption `f`
/// (see [`marzullo::fuse`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MarzulloFuser {
    f: usize,
}

impl MarzulloFuser {
    /// Creates a Marzullo fuser assuming at most `f` faulty sensors.
    pub fn new(f: usize) -> Self {
        Self { f }
    }

    /// The fault assumption.
    pub fn f(&self) -> usize {
        self.f
    }
}

impl<T: Scalar> Fuser<T> for MarzulloFuser {
    fn fuse(&self, intervals: &[Interval<T>]) -> Result<Interval<T>, FusionError> {
        marzullo::fuse(intervals, self.f)
    }

    fn name(&self) -> &str {
        "marzullo"
    }
}

/// Brooks–Iyengar fusion with a fixed fault assumption `f`; exposes only
/// the fused interval through the [`Fuser`] interface
/// (see [`brooks_iyengar::fuse`] for the point estimate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BrooksIyengarFuser {
    f: usize,
}

impl BrooksIyengarFuser {
    /// Creates a Brooks–Iyengar fuser assuming at most `f` faulty sensors.
    pub fn new(f: usize) -> Self {
        Self { f }
    }

    /// The fault assumption.
    pub fn f(&self) -> usize {
        self.f
    }
}

impl<T: Scalar> Fuser<T> for BrooksIyengarFuser {
    fn fuse(&self, intervals: &[Interval<T>]) -> Result<Interval<T>, FusionError> {
        brooks_iyengar::fuse(intervals, self.f).map(|out| out.interval)
    }

    fn name(&self) -> &str {
        "brooks-iyengar"
    }
}

/// The common intersection (Marzullo with `f = 0`): precise but brittle —
/// a single faulty sensor empties it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct IntersectionFuser;

impl<T: Scalar> Fuser<T> for IntersectionFuser {
    fn fuse(&self, intervals: &[Interval<T>]) -> Result<Interval<T>, FusionError> {
        if intervals.is_empty() {
            return Err(FusionError::EmptyInput);
        }
        intersection_all(intervals).ok_or(FusionError::NoAgreement {
            required: intervals.len(),
        })
    }

    fn name(&self) -> &str {
        "intersection"
    }
}

/// The convex hull (Marzullo with `f = n − 1`): never wrong, never precise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct HullFuser;

impl<T: Scalar> Fuser<T> for HullFuser {
    fn fuse(&self, intervals: &[Interval<T>]) -> Result<Interval<T>, FusionError> {
        hull_all(intervals).ok_or(FusionError::EmptyInput)
    }

    fn name(&self) -> &str {
        "hull"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    fn sample() -> Vec<Interval<f64>> {
        vec![iv(0.0, 2.0), iv(1.0, 3.0), iv(1.5, 2.5)]
    }

    #[test]
    fn trait_objects_work() {
        let fusers: Vec<Box<dyn Fuser<f64>>> = vec![
            Box::new(MarzulloFuser::new(1)),
            Box::new(BrooksIyengarFuser::new(1)),
            Box::new(IntersectionFuser),
            Box::new(HullFuser),
        ];
        let s = sample();
        for fuser in &fusers {
            let fused = fuser.fuse(&s).unwrap();
            assert!(fused.width() >= 0.0, "{} produced {fused}", fuser.name());
        }
    }

    #[test]
    fn fusers_nest_as_expected() {
        // intersection ⊆ marzullo(f) ⊆ hull for any f.
        let s = sample();
        let inter = Fuser::<f64>::fuse(&IntersectionFuser, &s).unwrap();
        let marz = Fuser::<f64>::fuse(&MarzulloFuser::new(1), &s).unwrap();
        let hull = Fuser::<f64>::fuse(&HullFuser, &s).unwrap();
        assert!(marz.contains_interval(&inter));
        assert!(hull.contains_interval(&marz));
    }

    #[test]
    fn intersection_fuser_errors_on_disagreement() {
        let s = [iv(0.0, 1.0), iv(2.0, 3.0)];
        let err = Fuser::<f64>::fuse(&IntersectionFuser, &s).unwrap_err();
        assert_eq!(err, FusionError::NoAgreement { required: 2 });
    }

    #[test]
    fn names_are_distinct() {
        let marzullo = MarzulloFuser::new(0);
        let bi = BrooksIyengarFuser::new(0);
        let names = [
            Fuser::<f64>::name(&marzullo),
            Fuser::<f64>::name(&bi),
            Fuser::<f64>::name(&IntersectionFuser),
            Fuser::<f64>::name(&HullFuser),
        ];
        let mut unique = names.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn empty_input_errors_everywhere() {
        let empty: [Interval<f64>; 0] = [];
        assert!(Fuser::<f64>::fuse(&MarzulloFuser::new(0), &empty).is_err());
        assert!(Fuser::<f64>::fuse(&BrooksIyengarFuser::new(0), &empty).is_err());
        assert!(Fuser::<f64>::fuse(&IntersectionFuser, &empty).is_err());
        assert!(Fuser::<f64>::fuse(&HullFuser, &empty).is_err());
    }

    #[test]
    fn brooks_iyengar_interval_equals_marzullo() {
        let s = sample();
        assert_eq!(
            Fuser::<f64>::fuse(&BrooksIyengarFuser::new(1), &s).unwrap(),
            Fuser::<f64>::fuse(&MarzulloFuser::new(1), &s).unwrap()
        );
    }
}
