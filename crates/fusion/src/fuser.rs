//! A uniform, object-safe interface over every interval fuser.
//!
//! The round engine in `arsf-core`, the benchmark harness and the
//! simulation pipeline all swap fusion algorithms behind one interface
//! (e.g. comparing attack impact on Marzullo vs Brooks–Iyengar vs
//! historical vs weighted fusion). [`Fuser`] is that interface; it is
//! object-safe so heterogeneous fusers can live in a
//! `Vec<Box<dyn Fuser<f64>>>`, and it takes `&mut self` so *stateful*
//! fusers (like [`HistoricalFuser`](crate::historical::HistoricalFuser),
//! which carries the previous round's interval) plug in next to the
//! memoryless ones.

use arsf_interval::ops::{hull_all, intersection_all};
use arsf_interval::{Interval, Scalar};

use crate::{brooks_iyengar, marzullo, weighted, FusionError};

/// An interval-fusion algorithm: `n` sensor intervals in, one fused
/// interval out.
///
/// Implementations may keep state between rounds (history, estimator
/// caches); [`Fuser::reset`] returns them to their initial state so one
/// boxed fuser can be reused across scenario runs.
///
/// # Example
///
/// ```
/// use arsf_fusion::{Fuser, HullFuser, MarzulloFuser};
/// use arsf_interval::Interval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut fusers: Vec<Box<dyn Fuser<f64>>> =
///     vec![Box::new(MarzulloFuser::new(1)), Box::new(HullFuser)];
/// let s = [
///     Interval::new(0.0, 2.0)?,
///     Interval::new(1.0, 3.0)?,
///     Interval::new(1.5, 2.5)?,
/// ];
/// for fuser in &mut fusers {
///     let fused = fuser.fuse(&s)?;
///     assert!(fused.width() <= 3.0);
/// }
/// # Ok(())
/// # }
/// ```
pub trait Fuser<T: Scalar> {
    /// Fuses the given intervals into one.
    ///
    /// # Errors
    ///
    /// Implementations return a [`FusionError`] when the input is empty or
    /// when their fault/agreement assumptions are violated.
    fn fuse(&mut self, intervals: &[Interval<T>]) -> Result<Interval<T>, FusionError>;

    /// A short human-readable name for reports and benchmark labels.
    fn name(&self) -> &str;

    /// Clears any state carried between rounds (no-op for memoryless
    /// fusers).
    fn reset(&mut self) {}
}

impl<T: Scalar, F: Fuser<T> + ?Sized> Fuser<T> for Box<F> {
    fn fuse(&mut self, intervals: &[Interval<T>]) -> Result<Interval<T>, FusionError> {
        (**self).fuse(intervals)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn reset(&mut self) {
        (**self).reset();
    }
}

/// Clamps a configured fault assumption to the round's interval count so
/// that sensors silenced by faults do not turn fusion into a
/// [`FusionError::FaultCountTooLarge`] error (the engine's contract: the
/// fault budget never exceeds `n − 1`).
///
/// The all-sensors-silenced round (`n = 0`) clamps to `f = 0` and
/// forwards the empty slice; every algorithm behind the [`Fuser`]
/// interface checks for empty input *before* its fault-budget check, so
/// such a round surfaces as [`FusionError::EmptyInput`] — never a panic
/// or a garbage interval. `empty_input_errors_everywhere` and the
/// `engine_facing_fusers_*` property tests pin this contract for every
/// stock fuser.
pub(crate) fn clamp_f(f: usize, n: usize) -> usize {
    f.min(n.saturating_sub(1))
}

/// Marzullo's algorithm with a fixed fault assumption `f`
/// (see [`marzullo::fuse`]).
///
/// Through the [`Fuser`] interface the fault assumption is clamped to
/// `n − 1` for rounds with fewer than `f + 1` intervals, so a sensor
/// silenced mid-run degrades the guarantee instead of erroring out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MarzulloFuser {
    f: usize,
}

impl MarzulloFuser {
    /// Creates a Marzullo fuser assuming at most `f` faulty sensors.
    pub fn new(f: usize) -> Self {
        Self { f }
    }

    /// The fault assumption.
    pub fn f(&self) -> usize {
        self.f
    }
}

impl<T: Scalar> Fuser<T> for MarzulloFuser {
    fn fuse(&mut self, intervals: &[Interval<T>]) -> Result<Interval<T>, FusionError> {
        marzullo::fuse(intervals, clamp_f(self.f, intervals.len()))
    }

    fn name(&self) -> &str {
        "marzullo"
    }
}

/// Brooks–Iyengar fusion with a fixed fault assumption `f`; exposes only
/// the fused interval through the [`Fuser`] interface
/// (see [`brooks_iyengar::fuse`] for the point estimate). The fault
/// assumption is clamped exactly as for [`MarzulloFuser`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BrooksIyengarFuser {
    f: usize,
}

impl BrooksIyengarFuser {
    /// Creates a Brooks–Iyengar fuser assuming at most `f` faulty sensors.
    pub fn new(f: usize) -> Self {
        Self { f }
    }

    /// The fault assumption.
    pub fn f(&self) -> usize {
        self.f
    }
}

impl<T: Scalar> Fuser<T> for BrooksIyengarFuser {
    fn fuse(&mut self, intervals: &[Interval<T>]) -> Result<Interval<T>, FusionError> {
        brooks_iyengar::fuse(intervals, clamp_f(self.f, intervals.len())).map(|out| out.interval)
    }

    fn name(&self) -> &str {
        "brooks-iyengar"
    }
}

/// The common intersection (Marzullo with `f = 0`): precise but brittle —
/// a single faulty sensor empties it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct IntersectionFuser;

impl<T: Scalar> Fuser<T> for IntersectionFuser {
    fn fuse(&mut self, intervals: &[Interval<T>]) -> Result<Interval<T>, FusionError> {
        if intervals.is_empty() {
            return Err(FusionError::EmptyInput);
        }
        intersection_all(intervals).ok_or(FusionError::NoAgreement {
            required: intervals.len(),
        })
    }

    fn name(&self) -> &str {
        "intersection"
    }
}

/// The convex hull (Marzullo with `f = n − 1`): never wrong, never precise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct HullFuser;

impl<T: Scalar> Fuser<T> for HullFuser {
    fn fuse(&mut self, intervals: &[Interval<T>]) -> Result<Interval<T>, FusionError> {
        hull_all(intervals).ok_or(FusionError::EmptyInput)
    }

    fn name(&self) -> &str {
        "hull"
    }
}

/// Inverse-variance weighted point fusion viewed as an interval: the
/// classical probabilistic baseline ([`weighted::inverse_variance`])
/// reported as `[value − radius, value + radius]`.
///
/// **Not** attack-resilient — a single forged reading shifts the mean
/// arbitrarily. It exists behind the [`Fuser`] interface precisely so
/// scenario sweeps can quantify that weakness against the resilient
/// fusers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct InverseVarianceFuser;

impl Fuser<f64> for InverseVarianceFuser {
    fn fuse(&mut self, intervals: &[Interval<f64>]) -> Result<Interval<f64>, FusionError> {
        weighted::inverse_variance(intervals).map(|est| est.to_interval())
    }

    fn name(&self) -> &str {
        "inverse-variance"
    }
}

/// Midpoint-median point fusion viewed as an interval — the classical
/// robust location estimator ([`weighted::midpoint_median`]) behind the
/// [`Fuser`] interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MidpointMedianFuser;

impl Fuser<f64> for MidpointMedianFuser {
    fn fuse(&mut self, intervals: &[Interval<f64>]) -> Result<Interval<f64>, FusionError> {
        weighted::midpoint_median(intervals).map(|est| est.to_interval())
    }

    fn name(&self) -> &str {
        "midpoint-median"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::historical::{DynamicsBound, HistoricalFuser};

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    fn sample() -> Vec<Interval<f64>> {
        vec![iv(0.0, 2.0), iv(1.0, 3.0), iv(1.5, 2.5)]
    }

    #[test]
    fn trait_objects_work() {
        let mut fusers: Vec<Box<dyn Fuser<f64>>> = vec![
            Box::new(MarzulloFuser::new(1)),
            Box::new(BrooksIyengarFuser::new(1)),
            Box::new(IntersectionFuser),
            Box::new(HullFuser),
            Box::new(InverseVarianceFuser),
            Box::new(MidpointMedianFuser),
            Box::new(HistoricalFuser::new(1, DynamicsBound::new(1.0), 0.1)),
        ];
        let s = sample();
        for fuser in &mut fusers {
            let fused = fuser.fuse(&s).unwrap();
            assert!(fused.width() >= 0.0, "{} produced {fused}", fuser.name());
            fuser.reset();
        }
    }

    #[test]
    fn fusers_nest_as_expected() {
        // intersection ⊆ marzullo(f) ⊆ hull for any f.
        let s = sample();
        let inter = Fuser::<f64>::fuse(&mut IntersectionFuser, &s).unwrap();
        let marz = Fuser::<f64>::fuse(&mut MarzulloFuser::new(1), &s).unwrap();
        let hull = Fuser::<f64>::fuse(&mut HullFuser, &s).unwrap();
        assert!(marz.contains_interval(&inter));
        assert!(hull.contains_interval(&marz));
    }

    #[test]
    fn intersection_fuser_errors_on_disagreement() {
        let s = [iv(0.0, 1.0), iv(2.0, 3.0)];
        let err = Fuser::<f64>::fuse(&mut IntersectionFuser, &s).unwrap_err();
        assert_eq!(err, FusionError::NoAgreement { required: 2 });
    }

    #[test]
    fn names_are_distinct() {
        let marzullo = MarzulloFuser::new(0);
        let bi = BrooksIyengarFuser::new(0);
        let names = [
            Fuser::<f64>::name(&marzullo),
            Fuser::<f64>::name(&bi),
            Fuser::<f64>::name(&IntersectionFuser),
            Fuser::<f64>::name(&HullFuser),
            Fuser::<f64>::name(&InverseVarianceFuser),
            Fuser::<f64>::name(&MidpointMedianFuser),
        ];
        let mut unique = names.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn empty_input_errors_everywhere() {
        // The all-sensors-silenced round: clamp_f(f, 0) forwards an empty
        // slice, and every engine-facing fuser must answer with
        // EmptyInput — whatever f it was configured with.
        let empty: [Interval<f64>; 0] = [];
        for f in [0, 1, 5] {
            let mut fusers: Vec<Box<dyn Fuser<f64>>> = vec![
                Box::new(MarzulloFuser::new(f)),
                Box::new(BrooksIyengarFuser::new(f)),
                Box::new(IntersectionFuser),
                Box::new(HullFuser),
                Box::new(InverseVarianceFuser),
                Box::new(MidpointMedianFuser),
                Box::new(HistoricalFuser::new(f, DynamicsBound::new(1.0), 0.1)),
            ];
            for fuser in &mut fusers {
                assert_eq!(
                    fuser.fuse(&empty),
                    Err(FusionError::EmptyInput),
                    "{} (f = {f}) must report the silenced round",
                    fuser.name()
                );
            }
        }
    }

    #[test]
    fn historical_fuser_survives_an_empty_round_and_keeps_history() {
        // A stateful fuser must treat the silenced round as transient:
        // error out, keep the accumulated history intact, and refine the
        // next populated round with it.
        let mut fuser = HistoricalFuser::new(1, DynamicsBound::new(1.0), 0.1);
        let first = Fuser::fuse(&mut fuser, &sample()).unwrap();
        assert_eq!(
            Fuser::fuse(&mut fuser, &[]),
            Err(FusionError::EmptyInput),
            "silenced round errors instead of panicking"
        );
        assert_eq!(fuser.history(), Some(first), "history survives the gap");
        assert!(Fuser::fuse(&mut fuser, &sample()).is_ok());
    }

    #[test]
    fn brooks_iyengar_interval_equals_marzullo() {
        let s = sample();
        assert_eq!(
            Fuser::<f64>::fuse(&mut BrooksIyengarFuser::new(1), &s).unwrap(),
            Fuser::<f64>::fuse(&mut MarzulloFuser::new(1), &s).unwrap()
        );
    }

    #[test]
    fn fault_assumption_is_clamped_to_the_round() {
        // Two intervals with f = 2: the direct algorithm errors, the
        // engine-facing trait clamps to f = 1 (a silenced-sensor round
        // must not kill the pipeline).
        let s = [iv(0.0, 2.0), iv(1.0, 3.0)];
        assert!(marzullo::fuse(&s, 2).is_err());
        let fused = Fuser::<f64>::fuse(&mut MarzulloFuser::new(2), &s).unwrap();
        assert_eq!(fused, iv(0.0, 3.0));
    }

    #[test]
    fn boxed_fusers_forward_all_methods() {
        let mut boxed: Box<dyn Fuser<f64>> =
            Box::new(HistoricalFuser::new(1, DynamicsBound::new(1.0), 0.1));
        let first = boxed.fuse(&sample()).unwrap();
        assert_eq!(boxed.name(), "historical");
        boxed.reset();
        // After reset the same round fuses memorylessly again.
        assert_eq!(boxed.fuse(&sample()).unwrap(), first);
    }

    #[test]
    fn weighted_fusers_are_not_attack_resilient() {
        // The forged outlier drags inverse-variance away but not the
        // median — exactly the contrast the paper's introduction draws.
        let honest = [iv(9.5, 10.5), iv(9.0, 11.0), iv(9.8, 10.2)];
        let attacked = [iv(9.5, 10.5), iv(9.0, 11.0), iv(99.8, 100.2)];
        let iv_honest = Fuser::<f64>::fuse(&mut InverseVarianceFuser, &honest).unwrap();
        let iv_attacked = Fuser::<f64>::fuse(&mut InverseVarianceFuser, &attacked).unwrap();
        assert!((iv_attacked.midpoint() - iv_honest.midpoint()).abs() > 10.0);
        let med_honest = Fuser::<f64>::fuse(&mut MidpointMedianFuser, &honest).unwrap();
        let med_attacked = Fuser::<f64>::fuse(&mut MidpointMedianFuser, &attacked).unwrap();
        assert!((med_attacked.midpoint() - med_honest.midpoint()).abs() < 1.0);
    }
}
