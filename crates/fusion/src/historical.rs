//! Historical (dynamics-aware) interval fusion.
//!
//! The DATE'14 paper fuses each round independently. Its authors' own
//! follow-up line of work observes that a *bounded-dynamics* model makes
//! past measurements useful: if the measured variable can change by at
//! most `max_rate` per second, last round's fused interval — inflated by
//! `max_rate · dt` — still contains the true value and can be
//! intersected with the current fusion interval. The result is never
//! wider than either source and blunts exactly the attack this
//! repository studies: a forged extension of today's fusion interval is
//! clipped by yesterday's evidence.
//!
//! The refinement is sound only while the dynamics assumption holds and
//! at most `f` sensors misbehave; when the intersection comes up empty
//! (broken assumption, or more faults than `f`), the fuser falls back to
//! the memoryless interval and reports the anomaly.

use arsf_interval::Interval;

use crate::{marzullo, FusionError};

/// A bound on how fast the measured physical variable can change:
/// `|dx/dt| ≤ max_rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicsBound {
    max_rate: f64,
}

impl DynamicsBound {
    /// Creates a rate bound.
    ///
    /// # Panics
    ///
    /// Panics if `max_rate` is negative or not finite.
    pub fn new(max_rate: f64) -> Self {
        assert!(
            max_rate.is_finite() && max_rate >= 0.0,
            "rate bound must be finite and non-negative"
        );
        Self { max_rate }
    }

    /// The bound value.
    pub fn max_rate(&self) -> f64 {
        self.max_rate
    }

    /// Propagates an interval forward by `dt` seconds: every point the
    /// variable could reach starting anywhere inside `interval`.
    pub fn propagate(&self, interval: &Interval<f64>, dt: f64) -> Interval<f64> {
        let slack = self.max_rate * dt.abs();
        Interval::new(interval.lo() - slack, interval.hi() + slack)
            .unwrap_or_else(|_| unreachable!("inflation preserves endpoint ordering"))
    }
}

/// The outcome of one historical-fusion round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistoricalOutcome {
    /// The memoryless Marzullo fusion of this round's intervals.
    pub memoryless: Interval<f64>,
    /// The refined interval actually reported (intersection with the
    /// propagated history when consistent).
    pub fused: Interval<f64>,
    /// `true` when the propagated history and the fresh fusion were
    /// disjoint — evidence that the dynamics bound or the fault budget
    /// was violated; the fuser reset to the memoryless interval.
    pub history_conflict: bool,
}

/// A stateful fuser combining Marzullo fusion with propagated history.
///
/// # Example
///
/// ```
/// use arsf_fusion::historical::{DynamicsBound, HistoricalFuser};
/// use arsf_interval::Interval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Speed changes at most 0.3 mph per 0.1 s control period.
/// let mut fuser = HistoricalFuser::new(1, DynamicsBound::new(3.0), 0.1);
/// let round1 = [Interval::new(9.9, 10.1)?, Interval::new(9.5, 10.5)?, Interval::new(9.0, 11.0)?];
/// let out1 = fuser.fuse_round(&round1)?;
/// // Second round: one sensor forged far to the right; the history clips it.
/// let round2 = [Interval::new(9.9, 10.1)?, Interval::new(9.5, 10.5)?, Interval::new(10.4, 12.4)?];
/// let out2 = fuser.fuse_round(&round2)?;
/// assert!(out2.fused.width() <= out2.memoryless.width());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HistoricalFuser {
    f: usize,
    bound: DynamicsBound,
    dt: f64,
    history: Option<Interval<f64>>,
}

impl HistoricalFuser {
    /// Creates a fuser with fault assumption `f`, the dynamics bound, and
    /// the fixed inter-round period `dt` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive and finite.
    pub fn new(f: usize, bound: DynamicsBound, dt: f64) -> Self {
        assert!(dt.is_finite() && dt > 0.0, "round period must be positive");
        Self {
            f,
            bound,
            dt,
            history: None,
        }
    }

    /// The fault assumption.
    pub fn f(&self) -> usize {
        self.f
    }

    /// The dynamics bound.
    pub fn bound(&self) -> DynamicsBound {
        self.bound
    }

    /// The interval carried from the previous round, if any.
    pub fn history(&self) -> Option<Interval<f64>> {
        self.history
    }

    /// Clears the carried history (e.g. after a mode switch that breaks
    /// the dynamics assumption).
    pub fn reset(&mut self) {
        self.history = None;
    }

    /// Fuses one round of intervals, refining with propagated history.
    ///
    /// # Errors
    ///
    /// Propagates [`FusionError`] from the memoryless fusion; the history
    /// is left unchanged in that case so a transient sensor outage does
    /// not destroy the accumulated knowledge.
    pub fn fuse_round(
        &mut self,
        intervals: &[Interval<f64>],
    ) -> Result<HistoricalOutcome, FusionError> {
        self.fuse_round_with_f(intervals, self.f)
    }

    fn fuse_round_with_f(
        &mut self,
        intervals: &[Interval<f64>],
        f: usize,
    ) -> Result<HistoricalOutcome, FusionError> {
        let memoryless = marzullo::fuse(intervals, f)?;
        let (fused, history_conflict) = match self.history {
            None => (memoryless, false),
            Some(prev) => {
                let reachable = self.bound.propagate(&prev, self.dt);
                match memoryless.intersection(&reachable) {
                    Some(refined) => (refined, false),
                    // Disjoint: dynamics or fault assumption violated.
                    None => (memoryless, true),
                }
            }
        };
        self.history = Some(fused);
        Ok(HistoricalOutcome {
            memoryless,
            fused,
            history_conflict,
        })
    }
}

impl crate::Fuser<f64> for HistoricalFuser {
    /// One engine round: memoryless Marzullo refined by propagated
    /// history; only the refined interval is exposed (use
    /// [`HistoricalFuser::fuse_round`] for the full
    /// [`HistoricalOutcome`]). As for every engine-facing fuser, the
    /// fault assumption is clamped to `n − 1` so a sensor silenced
    /// mid-run degrades the guarantee instead of erroring out.
    fn fuse(&mut self, intervals: &[Interval<f64>]) -> Result<Interval<f64>, FusionError> {
        let clamped = crate::fuser::clamp_f(self.f, intervals.len());
        self.fuse_round_with_f(intervals, clamped)
            .map(|out| out.fused)
    }

    fn name(&self) -> &str {
        "historical"
    }

    fn reset(&mut self) {
        HistoricalFuser::reset(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    fn round(center: f64) -> Vec<Interval<f64>> {
        vec![
            Interval::centered(center, 0.1).unwrap(),
            Interval::centered(center, 0.5).unwrap(),
            Interval::centered(center, 1.0).unwrap(),
        ]
    }

    #[test]
    fn first_round_is_memoryless() {
        let mut fuser = HistoricalFuser::new(1, DynamicsBound::new(3.0), 0.1);
        let out = fuser.fuse_round(&round(10.0)).unwrap();
        assert_eq!(out.fused, out.memoryless);
        assert!(!out.history_conflict);
        assert_eq!(fuser.history(), Some(out.fused));
    }

    #[test]
    fn refinement_never_widens() {
        let mut fuser = HistoricalFuser::new(1, DynamicsBound::new(3.0), 0.1);
        let mut truth = 10.0;
        for step in 0..50 {
            truth += 0.01 * (step % 3) as f64; // slow drift within bound
            let out = fuser.fuse_round(&round(truth)).unwrap();
            assert!(out.fused.width() <= out.memoryless.width() + 1e-12);
            assert!(out.fused.contains(truth), "step {step} lost the truth");
            assert!(!out.history_conflict);
        }
    }

    #[test]
    fn history_clips_a_forged_extension() {
        let mut fuser = HistoricalFuser::new(1, DynamicsBound::new(1.0), 0.1);
        // Honest round with well-nested sensors establishes a tight
        // history [9.9, 10.3].
        let honest = vec![iv(9.95, 10.05), iv(9.9, 10.3), iv(9.8, 10.6)];
        let first = fuser.fuse_round(&honest).unwrap();
        assert_eq!(first.fused, iv(9.9, 10.3));
        // Next round, the camera is forged to stretch the fusion right to
        // the GPS's upper endpoint (memoryless fusion [9.9, 10.5]).
        let forged = vec![
            Interval::centered(10.0, 0.1).unwrap(),
            Interval::centered(10.0, 0.5).unwrap(),
            iv(10.45, 12.45),
        ];
        let memoryless = marzullo::fuse(&forged, 1).unwrap();
        let out = fuser.fuse_round(&forged).unwrap();
        assert!(
            out.fused.width() < memoryless.width(),
            "history must clip the forged extension: {} vs {}",
            out.fused.width(),
            memoryless.width()
        );
        // The clip lands exactly on the reachable set's upper bound:
        // 10.3 + 1.0 mph/s * 0.1 s = 10.4.
        assert!((out.fused.hi() - 10.4).abs() < 1e-12);
        assert!(!out.history_conflict);
    }

    #[test]
    fn conflict_falls_back_and_reports() {
        let mut fuser = HistoricalFuser::new(1, DynamicsBound::new(0.5), 0.1);
        fuser.fuse_round(&round(10.0)).unwrap();
        // Teleport far beyond the reachable set: assumption broken.
        let out = fuser.fuse_round(&round(50.0)).unwrap();
        assert!(out.history_conflict);
        assert_eq!(out.fused, out.memoryless);
        // History restarts from the fresh interval.
        assert_eq!(fuser.history(), Some(out.fused));
    }

    #[test]
    fn fusion_error_preserves_history() {
        let mut fuser = HistoricalFuser::new(0, DynamicsBound::new(1.0), 0.1);
        fuser.fuse_round(&round(10.0)).unwrap();
        let before = fuser.history();
        // Disjoint pair with f = 0: no agreement.
        let bad = [iv(0.0, 1.0), iv(5.0, 6.0)];
        assert!(fuser.fuse_round(&bad).is_err());
        assert_eq!(fuser.history(), before);
    }

    #[test]
    fn reset_clears_history() {
        let mut fuser = HistoricalFuser::new(1, DynamicsBound::new(1.0), 0.1);
        fuser.fuse_round(&round(10.0)).unwrap();
        fuser.reset();
        assert!(fuser.history().is_none());
    }

    #[test]
    fn engine_facing_fuse_clamps_the_fault_budget() {
        use crate::Fuser;
        // One interval with f = 1: the stateful API errors (its contract),
        // but the engine-facing trait clamps so a silenced-sensor round
        // degrades instead of failing.
        let mut fuser = HistoricalFuser::new(1, DynamicsBound::new(100.0), 0.1);
        let single = [iv(9.0, 11.0)];
        assert!(fuser.fuse_round(&single).is_err());
        let fused = Fuser::fuse(&mut fuser, &single).unwrap();
        assert_eq!(fused, iv(9.0, 11.0));
    }

    #[test]
    fn propagate_inflates_symmetrically() {
        let bound = DynamicsBound::new(2.0);
        let p = bound.propagate(&iv(0.0, 1.0), 0.5);
        assert_eq!(p, iv(-1.0, 2.0));
        // Zero rate: identity.
        assert_eq!(
            DynamicsBound::new(0.0).propagate(&iv(0.0, 1.0), 9.0),
            iv(0.0, 1.0)
        );
    }

    #[test]
    #[should_panic(expected = "rate bound must be finite")]
    fn negative_rate_panics() {
        let _ = DynamicsBound::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "round period must be positive")]
    fn zero_dt_panics() {
        let _ = HistoricalFuser::new(1, DynamicsBound::new(1.0), 0.0);
    }
}
