//! Fault-tolerant interval sensor fusion.
//!
//! This crate implements the fusion layer of the [DATE 2014 paper
//! *Attack-Resilient Sensor Fusion*][paper]:
//!
//! * [`marzullo`] — Marzullo's algorithm: given `n` abstract-sensor
//!   intervals and an assumed fault count `f`, the fusion interval spans
//!   the smallest to the largest point contained in at least `n − f`
//!   intervals (`O(n log n)` sweep),
//! * [`naive`] — an `O(n²)` reference implementation used to cross-validate
//!   the sweep in tests and benchmarks,
//! * [`brooks_iyengar`] — the Brooks–Iyengar hybrid algorithm, the robust
//!   fusion baseline cited by the paper,
//! * [`weighted`] — probabilistic point-fusion baselines (inverse-variance
//!   weighting, midpoint mean/median),
//! * [`bounds`] — the paper's worst-case guarantees (Theorem 2 bound,
//!   `f < ⌈n/3⌉` / `f < ⌈n/2⌉` boundedness conditions) as checkable
//!   predicates,
//! * [`historical`] — dynamics-aware fusion carrying the previous round's
//!   interval forward (the authors' follow-up direction), which clips
//!   forged extensions,
//! * [`Fuser`] — an object-safe trait unifying all fusers (memoryless
//!   and stateful) for the round engine, the scenario runner and the
//!   benchmark harness.
//!
//! # Example
//!
//! ```
//! use arsf_fusion::marzullo::fuse;
//! use arsf_interval::Interval;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Five sensors, at most one faulty: Fig. 1 of the paper with f = 1.
//! let sensors = [
//!     Interval::new(0.0, 6.0)?,
//!     Interval::new(1.0, 4.0)?,
//!     Interval::new(2.0, 8.0)?,
//!     Interval::new(3.0, 9.0)?,
//!     Interval::new(5.0, 10.0)?,
//! ];
//! let fused = fuse(&sensors, 1)?;
//! // Points covered by >= 4 intervals: [3,4] ∪ [5,6]; the span is [3,6].
//! assert_eq!(fused, Interval::new(3.0, 6.0)?);
//! # Ok(())
//! # }
//! ```
//!
//! [paper]: https://doi.org/10.7873/DATE.2014.067

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bounds;
pub mod brooks_iyengar;
mod error;
mod fuser;
pub mod historical;
pub mod marzullo;
pub mod naive;
pub mod weighted;

pub use error::FusionError;
pub use fuser::{
    BrooksIyengarFuser, Fuser, HullFuser, IntersectionFuser, InverseVarianceFuser, MarzulloFuser,
    MidpointMedianFuser,
};
