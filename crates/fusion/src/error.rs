//! Error type for fusion operations.

use core::fmt;

/// Error returned by the fusion algorithms in this crate.
///
/// # Example
///
/// ```
/// use arsf_fusion::{marzullo, FusionError};
/// use arsf_interval::Interval;
///
/// // Two disjoint intervals cannot agree if zero faults are assumed:
/// let a = Interval::new(0.0, 1.0).unwrap();
/// let b = Interval::new(5.0, 6.0).unwrap();
/// let err = marzullo::fuse(&[a, b], 0).unwrap_err();
/// assert!(matches!(err, FusionError::NoAgreement { required: 2 }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FusionError {
    /// No intervals were supplied.
    EmptyInput,
    /// The assumed fault count `f` is not smaller than the sensor count
    /// `n`; Marzullo's algorithm requires at least one trusted interval.
    FaultCountTooLarge {
        /// The assumed number of faulty sensors.
        f: usize,
        /// The number of sensors supplied.
        n: usize,
    },
    /// No point of the real line is covered by the required number of
    /// intervals. This certifies that strictly more than `f` sensors are
    /// faulty (or compromised), since `n − f` correct intervals would share
    /// the true value.
    NoAgreement {
        /// The coverage `n − f` that could not be reached.
        required: usize,
    },
}

impl fmt::Display for FusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusionError::EmptyInput => write!(f, "no intervals supplied"),
            FusionError::FaultCountTooLarge { f: faults, n } => write!(
                f,
                "assumed fault count {faults} must be smaller than sensor count {n}"
            ),
            FusionError::NoAgreement { required } => write!(
                f,
                "no point is covered by {required} intervals; more sensors are faulty than assumed"
            ),
        }
    }
}

impl std::error::Error for FusionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_nonempty_and_unpunctuated() {
        let errs = [
            FusionError::EmptyInput,
            FusionError::FaultCountTooLarge { f: 3, n: 3 },
            FusionError::NoAgreement { required: 2 },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_well_behaved() {
        fn assert_good<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<FusionError>();
    }
}
