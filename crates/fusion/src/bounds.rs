//! Worst-case guarantees on the fusion interval (paper Sections II-A and
//! III-B).
//!
//! The paper's analysis rests on a handful of width bounds:
//!
//! * **Marzullo's conditions** — if `f < ⌈n/3⌉`, the fusion interval is no
//!   wider than some *correct* interval; if `f < ⌈n/2⌉`, no wider than some
//!   interval (correct or not); for `f ≥ ⌈n/2⌉` no bound exists,
//! * **Theorem 2** — `|S_{N,f}| ≤ |s_c1| + |s_c2|`, the sum of the two
//!   widest *correct* intervals, whenever `f < ⌈n/2⌉` and at most `f`
//!   sensors are compromised.
//!
//! This module exposes those bounds as plain functions plus *checkers* that
//! evaluate a concrete configuration against them. The checkers are used by
//! the property-test suite and by the `repro_fig4` worst-case experiments.

use arsf_interval::ops::two_widest_sum;
use arsf_interval::{Interval, Scalar};

use crate::marzullo;
use crate::FusionError;

/// The regime a fault assumption `f` falls into for `n` sensors,
/// determining which width guarantee applies.
///
/// # Example
///
/// ```
/// use arsf_fusion::bounds::{regime, BoundRegime};
///
/// assert_eq!(regime(9, 2), BoundRegime::CorrectWidthBounded); // f < ceil(n/3)
/// assert_eq!(regime(9, 4), BoundRegime::SomeWidthBounded);    // f < ceil(n/2)
/// assert_eq!(regime(9, 5), BoundRegime::Unbounded);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundRegime {
    /// `f < ⌈n/3⌉`: the fusion width is bounded by the width of some
    /// correct interval.
    CorrectWidthBounded,
    /// `⌈n/3⌉ ≤ f < ⌈n/2⌉`: the fusion width is bounded by the width of
    /// some (not necessarily correct) interval.
    SomeWidthBounded,
    /// `f ≥ ⌈n/2⌉`: the fusion interval may be arbitrarily large and may
    /// exclude the true value.
    Unbounded,
}

/// Classifies the `(n, f)` pair into its [`BoundRegime`].
pub fn regime(n: usize, f: usize) -> BoundRegime {
    if f < n.div_ceil(3) {
        BoundRegime::CorrectWidthBounded
    } else if f < n.div_ceil(2) {
        BoundRegime::SomeWidthBounded
    } else {
        BoundRegime::Unbounded
    }
}

/// Theorem 2 upper bound: the sum of the widths of the two widest
/// *correct* intervals, or `None` when fewer than two correct intervals
/// are supplied.
///
/// # Example
///
/// ```
/// use arsf_fusion::bounds::theorem2_bound;
/// use arsf_interval::Interval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let correct = [
///     Interval::new(0.0, 5.0)?,
///     Interval::new(2.0, 4.0)?,
///     Interval::new(3.0, 10.0)?,
/// ];
/// assert_eq!(theorem2_bound(&correct), Some(12.0)); // 5 + 7
/// # Ok(())
/// # }
/// ```
pub fn theorem2_bound<T: Scalar>(correct: &[Interval<T>]) -> Option<T> {
    two_widest_sum(correct)
}

/// The outcome of checking one concrete configuration against the paper's
/// width guarantees.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundCheck<T> {
    /// The fusion interval that was checked.
    pub fusion: Interval<T>,
    /// Which regime `(n, f)` fell into.
    pub regime: BoundRegime,
    /// Theorem 2 bound (two widest correct intervals), when computable.
    pub theorem2: Option<T>,
    /// `true` when the fusion width respects every applicable bound.
    pub holds: bool,
}

/// Fuses `all` (correct ∪ compromised) with fault assumption `f` and checks
/// the result against every applicable bound, given which intervals are
/// known (to the experimenter) to be correct.
///
/// `correct_indices` selects the correct intervals inside `all`; indices
/// out of range are ignored. This "omniscient" view is only available in
/// simulation, which is exactly where bound-checking is useful.
///
/// # Errors
///
/// Propagates [`FusionError`] from the underlying fusion.
///
/// # Example
///
/// ```
/// use arsf_fusion::bounds::check_bounds;
/// use arsf_interval::Interval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let all = [
///     Interval::new(0.0, 2.0)?,   // correct
///     Interval::new(1.0, 3.0)?,   // correct
///     Interval::new(2.5, 9.0)?,   // attacked
/// ];
/// let report = check_bounds(&all, &[0, 1], 1)?;
/// assert!(report.holds);
/// # Ok(())
/// # }
/// ```
pub fn check_bounds<T: Scalar>(
    all: &[Interval<T>],
    correct_indices: &[usize],
    f: usize,
) -> Result<BoundCheck<T>, FusionError> {
    let fusion = marzullo::fuse(all, f)?;
    let n = all.len();
    let reg = regime(n, f);
    let correct: Vec<Interval<T>> = correct_indices
        .iter()
        .filter_map(|&i| all.get(i).copied())
        .collect();
    let t2 = theorem2_bound(&correct);

    let width = fusion.width();
    let mut holds = true;

    if let Some(bound) = t2 {
        // Theorem 2 applies whenever f < ceil(n/2) and the number of
        // compromised sensors is at most f.
        if reg != BoundRegime::Unbounded && n - correct.len() <= f && width > bound {
            holds = false;
        }
    }
    match reg {
        BoundRegime::CorrectWidthBounded => {
            if n - correct.len() <= f {
                let widest_correct = correct
                    .iter()
                    .map(|s| s.width())
                    .fold(T::ZERO, |a, b| a.max_scalar(b));
                if width > widest_correct {
                    holds = false;
                }
            }
        }
        BoundRegime::SomeWidthBounded => {
            let widest_any = all
                .iter()
                .map(|s| s.width())
                .fold(T::ZERO, |a, b| a.max_scalar(b));
            if width > widest_any {
                holds = false;
            }
        }
        BoundRegime::Unbounded => {}
    }

    Ok(BoundCheck {
        fusion,
        regime: reg,
        theorem2: t2,
        holds,
    })
}

/// Theorem 2, evaluated statically from *declared* widths alone: the sum
/// of the two widest widths in `widths`, or the single width when only
/// one sensor is declared (the hull of one correct interval is itself),
/// or `None` when `widths` is empty.
///
/// Unlike [`theorem2_bound`], which needs the concrete intervals of a
/// simulated round, this needs only the a-priori width vector a sensor
/// suite publishes — so it can bound a scenario before any round is run.
///
/// # Example
///
/// ```
/// use arsf_fusion::bounds::static_theorem2_bound;
///
/// assert_eq!(static_theorem2_bound(&[5.0, 11.0, 17.0]), Some(28.0));
/// assert_eq!(static_theorem2_bound(&[5.0]), Some(5.0));
/// assert_eq!(static_theorem2_bound(&[]), None);
/// ```
pub fn static_theorem2_bound(widths: &[f64]) -> Option<f64> {
    let (mut first, mut second) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &w in widths {
        if w > first {
            second = first;
            first = w;
        } else if w > second {
            second = w;
        }
    }
    if widths.is_empty() {
        None
    } else {
        Some(first + second.max(0.0))
    }
}

/// Worst-case fused width for Marzullo-style fusion, derived from the
/// declared width vector alone — no intervals, no rounds.
///
/// * `widths` — declared widths of **all** `n` sensors. Taking the full
///   suite is sound even when some sensors are absent, because dropping
///   an interval can only shrink the two-widest sum and the maximum.
/// * `present` — the number of sensors actually transmitting this round
///   (declared `n` minus silenced sensors); the regime is decided on
///   this count, exactly as the fuser clamps at runtime.
/// * `f` — the fault assumption, clamped to `present - 1` like every
///   `Fuser` implementation does.
/// * `corrupt` — the worst-case number of *transmitting* sensors whose
///   intervals may exclude the truth (faulted or attacked).
///
/// Returns `None` when no finite bound is provable:
///
/// * `corrupt > f` — more corruption than the fault assumption covers;
///   Marzullo's guarantees are void,
/// * `f ≥ ⌈present/2⌉` with `corrupt > 0` — the unbounded regime,
/// * `present == 0` — nothing transmits, nothing is fused.
///
/// In the `f < ⌈present/3⌉` regime (or with no corruption in any
/// `f < ⌈present/2⌉` regime) the bound is the widest declared width; in
/// the `f < ⌈present/2⌉` regime with live corruption it is Theorem 2's
/// two-widest sum; an honest suite under an oversized `f` still fuses
/// within the hull of correct intervals, so the two-widest sum applies.
pub fn static_width_bound(widths: &[f64], present: usize, f: usize, corrupt: usize) -> Option<f64> {
    if present == 0 || widths.is_empty() {
        return None;
    }
    let f = f.min(present - 1);
    let corrupt = corrupt.min(present);
    if corrupt > f {
        return None;
    }
    let widest = widths.iter().copied().fold(0.0_f64, f64::max);
    match regime(present, f) {
        BoundRegime::CorrectWidthBounded => Some(widest),
        BoundRegime::SomeWidthBounded if corrupt == 0 => Some(widest),
        BoundRegime::SomeWidthBounded => static_theorem2_bound(widths),
        // An honest suite under an oversized f still fuses inside the
        // hull of correct intervals, which Theorem 2 bounds; any live
        // corruption in this regime is genuinely unbounded.
        BoundRegime::Unbounded if corrupt == 0 => static_theorem2_bound(widths),
        BoundRegime::Unbounded => None,
    }
}

/// [`static_width_bound`] for the historical (dynamics-bound) fuser.
///
/// The historical fuser intersects the memoryless Marzullo interval with
/// the propagated previous output and falls back to the memoryless
/// interval on conflict — its output is never wider than the memoryless
/// fusion, so the memoryless static bound carries over unchanged. The
/// `max_rate`/`dt` pair is validated (a non-finite or negative dynamics
/// bound voids the guarantee) but does not tighten the width bound: the
/// history only ever *refines* the interval.
pub fn historical_width_bound(
    widths: &[f64],
    present: usize,
    f: usize,
    corrupt: usize,
    max_rate: f64,
    dt: f64,
) -> Option<f64> {
    if !max_rate.is_finite() || max_rate < 0.0 || !dt.is_finite() {
        return None;
    }
    static_width_bound(widths, present, f, corrupt)
}

/// Per-vehicle worst-case widths for a platoon: every vehicle carries an
/// identical sensor suite and fuses independently, so the scalar bound
/// replicates across the platoon.
pub fn platoon_width_bounds(
    widths: &[f64],
    present: usize,
    f: usize,
    corrupt: usize,
    vehicles: usize,
) -> Vec<Option<f64>> {
    vec![static_width_bound(widths, present, f, corrupt); vehicles]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval<f64> {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn regime_thresholds() {
        // n = 5: ceil(5/3) = 2, ceil(5/2) = 3.
        assert_eq!(regime(5, 0), BoundRegime::CorrectWidthBounded);
        assert_eq!(regime(5, 1), BoundRegime::CorrectWidthBounded);
        assert_eq!(regime(5, 2), BoundRegime::SomeWidthBounded);
        assert_eq!(regime(5, 3), BoundRegime::Unbounded);
        // n = 3: ceil(3/3) = 1, ceil(3/2) = 2.
        assert_eq!(regime(3, 0), BoundRegime::CorrectWidthBounded);
        assert_eq!(regime(3, 1), BoundRegime::SomeWidthBounded);
        assert_eq!(regime(3, 2), BoundRegime::Unbounded);
    }

    #[test]
    fn theorem2_bound_requires_two_correct() {
        assert_eq!(theorem2_bound::<f64>(&[]), None);
        assert_eq!(theorem2_bound(&[iv(0.0, 3.0)]), None);
        assert_eq!(theorem2_bound(&[iv(0.0, 3.0), iv(0.0, 1.0)]), Some(4.0));
    }

    #[test]
    fn theorem2_tightness_example() {
        // Theorem 2 is achieved when two correct intervals touch at exactly
        // the true value: fusion (f = 1 of n = 3, one attacked interval
        // covering everything) spans both correct intervals entirely.
        let correct_left = iv(-5.0, 0.0);
        let correct_right = iv(0.0, 7.0);
        let attacked = iv(-5.0, 7.0); // covers both to maximise the span
        let all = [correct_left, correct_right, attacked];
        let report = check_bounds(&all, &[0, 1], 1).unwrap();
        assert_eq!(report.fusion.width(), 12.0); // exactly |s_c1| + |s_c2|
        assert_eq!(report.theorem2, Some(12.0));
        assert!(report.holds);
    }

    #[test]
    fn correct_width_bound_holds_without_faults() {
        // f = 0 < ceil(3/3): fusion (= common intersection) cannot exceed
        // any correct width.
        let all = [iv(0.0, 4.0), iv(1.0, 5.0), iv(2.0, 6.0)];
        let report = check_bounds(&all, &[0, 1, 2], 0).unwrap();
        assert_eq!(report.regime, BoundRegime::CorrectWidthBounded);
        assert!(report.holds);
    }

    #[test]
    fn some_width_bound_holds_with_attack() {
        // n = 3, f = 1 (SomeWidthBounded): the fusion is bounded by the
        // widest interval present, even with one attacked sensor.
        let all = [iv(0.0, 2.0), iv(1.0, 3.0), iv(2.9, 10.0)];
        let report = check_bounds(&all, &[0, 1], 1).unwrap();
        assert_eq!(report.regime, BoundRegime::SomeWidthBounded);
        assert!(report.holds);
    }

    #[test]
    fn unbounded_regime_skips_width_checks() {
        // f = 2 >= ceil(3/2): the fusion can be huge; the check must not
        // flag it because no guarantee is claimed.
        let all = [iv(0.0, 1.0), iv(100.0, 101.0), iv(200.0, 201.0)];
        let report = check_bounds(&all, &[0], 2).unwrap();
        assert_eq!(report.regime, BoundRegime::Unbounded);
        assert!(report.holds);
        assert_eq!(report.fusion, iv(0.0, 201.0));
    }

    #[test]
    fn out_of_range_correct_indices_are_ignored() {
        let all = [iv(0.0, 1.0), iv(0.5, 1.5)];
        let report = check_bounds(&all, &[0, 7], 0).unwrap();
        assert!(report.theorem2.is_none()); // only one valid correct index
        assert!(report.holds);
    }

    #[test]
    fn fusion_errors_propagate() {
        assert!(check_bounds::<f64>(&[], &[], 0).is_err());
    }

    #[test]
    fn static_theorem2_sums_the_two_widest() {
        assert_eq!(static_theorem2_bound(&[]), None);
        assert_eq!(static_theorem2_bound(&[3.0]), Some(3.0));
        assert_eq!(static_theorem2_bound(&[5.0, 11.0, 17.0]), Some(28.0));
        assert_eq!(static_theorem2_bound(&[0.2, 0.2, 1.0, 2.0]), Some(3.0));
    }

    #[test]
    fn static_width_bound_follows_the_regime() {
        let w = [0.2, 0.2, 1.0, 2.0]; // the landshark suite
                                      // f = 1 < ceil(4/3): bounded by the widest declared width.
        assert_eq!(static_width_bound(&w, 4, 1, 1), Some(2.0));
        // One sensor silenced: f = 1 = ceil(3/3) but < ceil(3/2), one
        // corrupt: Theorem 2's two-widest sum.
        assert_eq!(static_width_bound(&w, 3, 1, 1), Some(3.0));
        // Honest suite in the same regime: some interval is correct.
        assert_eq!(static_width_bound(&w, 3, 1, 0), Some(2.0));
        // Corruption exceeding the fault assumption voids everything.
        assert_eq!(static_width_bound(&w, 4, 1, 2), None);
        // Unbounded regime with live corruption.
        assert_eq!(static_width_bound(&w, 2, 1, 1), None);
        // Unbounded regime but honest: hull of correct intervals.
        assert_eq!(static_width_bound(&w, 2, 3, 0), Some(3.0));
        // Nothing transmitting.
        assert_eq!(static_width_bound(&w, 0, 1, 0), None);
    }

    #[test]
    fn static_width_bound_clamps_f_like_the_fusers() {
        // f = 9 clamps to present - 1 = 1 for two transmitting sensors;
        // honest, so the hull bound applies rather than None.
        assert_eq!(static_width_bound(&[1.0, 1.0], 2, 9, 0), Some(2.0));
    }

    #[test]
    fn historical_bound_matches_memoryless_and_validates_dynamics() {
        let w = [0.2, 0.2, 1.0, 2.0];
        assert_eq!(
            historical_width_bound(&w, 4, 1, 1, 3.5, 0.1),
            static_width_bound(&w, 4, 1, 1)
        );
        assert_eq!(historical_width_bound(&w, 4, 1, 1, f64::NAN, 0.1), None);
        assert_eq!(historical_width_bound(&w, 4, 1, 1, -1.0, 0.1), None);
        assert_eq!(
            historical_width_bound(&w, 4, 1, 1, 3.5, f64::INFINITY),
            None
        );
    }

    #[test]
    fn platoon_bounds_replicate_per_vehicle() {
        let w = [0.2, 0.2, 1.0, 2.0];
        let bounds = platoon_width_bounds(&w, 4, 1, 1, 3);
        assert_eq!(bounds, vec![Some(2.0); 3]);
        assert!(platoon_width_bounds(&w, 4, 1, 1, 0).is_empty());
    }
}
