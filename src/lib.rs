//! # arsf — Attack-Resilient Sensor Fusion
//!
//! A Rust reproduction of Ivanov, Pajic & Lee, **"Attack-Resilient Sensor
//! Fusion"**, DATE 2014 ([DOI 10.7873/DATE.2014.067][doi]): Marzullo
//! interval fusion under adversarial sensors, stealthy attack policies,
//! communication-schedule analysis, and the LandShark autonomous-vehicle
//! case study — behind a **pluggable engine**: any
//! [`Fuser`](fusion::Fuser) and any [`Detector`](detect::Detector) run
//! through one [`FusionPipeline`](core::FusionPipeline), and whole
//! experiments are declarative [`Scenario`](core::Scenario) values
//! executed by a [`ScenarioRunner`](core::ScenarioRunner).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`interval`] | `arsf-interval` | closed intervals, *k*-coverage sweep, ASCII diagrams |
//! | [`sensor`] | `arsf-sensor` | abstract sensors, bounded noise, faults, LandShark suite |
//! | [`fusion`] | `arsf-fusion` | the `Fuser` trait; Marzullo, Brooks–Iyengar, historical, weighted fusers, bounds (Thm 2) |
//! | [`detect`] | `arsf-detect` | the `Detector` trait; off/immediate/windowed detectors |
//! | [`schedule`] | `arsf-schedule` | Ascending/Descending/Random schedules, exposure analysis |
//! | [`attack`] | `arsf-attack` | optimal/expectimax/streaming attackers, worst cases (Thms 3–4) |
//! | [`bus`] | `arsf-bus` | CAN-like broadcast bus substrate |
//! | [`core`] | `arsf-core` | the generic fusion engine, scenarios + registry, batch runner, metrics, bus transport |
//! | [`analyze`] | `arsf-analyze` | static lints over scenarios, sweep grids and golden baselines |
//! | [`sim`] | `arsf-sim` | vehicle/platoon simulation, Table I & II engines |
//!
//! # Quickstart
//!
//! Fuse directly:
//!
//! ```
//! use arsf::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Three speedometers; at most one may be faulty or compromised.
//! let readings = [
//!     Interval::new(9.9, 10.1)?,  // encoder
//!     Interval::new(9.6, 10.6)?,  // GPS
//!     Interval::new(9.2, 11.2)?,  // camera
//! ];
//! let fused = arsf::fusion::marzullo::fuse(&readings, 1)?;
//! assert!(fused.contains(10.0));
//! # Ok(())
//! # }
//! ```
//!
//! Or describe a whole experiment declaratively and run it in batch:
//!
//! ```
//! use arsf::prelude::*;
//!
//! let scenario = Scenario::new("quickstart", SuiteSpec::Landshark)
//!     .with_schedule(SchedulePolicy::Descending)
//!     .with_attacker(AttackerSpec::Fixed {
//!         sensors: vec![0],
//!         strategy: StrategySpec::PhantomOptimal,
//!     })
//!     .with_fuser(FuserSpec::BrooksIyengar)
//!     .with_rounds(200);
//! let mut outcomes = Vec::new();
//! let summary = ScenarioRunner::new(&scenario).run_batch(200, &mut outcomes);
//! assert_eq!(summary.truth_lost, 0, "fa <= f keeps the truth");
//! assert!(outcomes.iter().all(|o| o.fusion.is_ok()));
//! ```
//!
//! [doi]: https://doi.org/10.7873/DATE.2014.067

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use arsf_analyze as analyze;
pub use arsf_attack as attack;
pub use arsf_bus as bus;
pub use arsf_core as core;
pub use arsf_detect as detect;
pub use arsf_fusion as fusion;
pub use arsf_interval as interval;
pub use arsf_schedule as schedule;
pub use arsf_sensor as sensor;
pub use arsf_sim as sim;

/// The most commonly used items in one import.
pub mod prelude {
    pub use arsf_attack::strategies::{GreedyExtreme, PhantomOptimal, Side};
    pub use arsf_attack::{AttackMode, AttackStrategy, AttackerConfig, Truthful};
    pub use arsf_core::metrics::SupervisorSummary;
    pub use arsf_core::scenario::{
        AttackerSpec, ClosedLoopSpec, FuserSpec, PlatoonSpec, Scenario, StrategySpec, SuiteSpec,
        TruthSpec,
    };
    pub use arsf_core::{
        BatchSummary, DetectionMode, FusionPipeline, PipelineConfig, RoundOutcome, ScenarioRunner,
    };
    pub use arsf_detect::{
        Detector, ImmediateDetector, NoDetector, OverlapDetector, RoundAssessment, WindowedDetector,
    };
    pub use arsf_fusion::marzullo::{fuse, FusionConfig};
    pub use arsf_fusion::{
        BrooksIyengarFuser, Fuser, FusionError, HullFuser, IntersectionFuser, InverseVarianceFuser,
        MarzulloFuser, MidpointMedianFuser,
    };
    pub use arsf_interval::{Interval, IntervalError};
    pub use arsf_schedule::{SchedulePolicy, TransmissionOrder};
    pub use arsf_sensor::{Measurement, NoiseModel, Sensor, SensorSpec, SensorSuite};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile_and_link() {
        let iv = crate::interval::Interval::new(0.0, 1.0).unwrap();
        assert_eq!(iv.width(), 1.0);
        let suite = crate::sensor::suite::landshark();
        assert_eq!(suite.len(), 4);
    }

    #[test]
    fn prelude_has_the_core_types() {
        use crate::prelude::*;
        let fused = fuse(
            &[
                Interval::new(0.0, 2.0).unwrap(),
                Interval::new(1.0, 3.0).unwrap(),
            ],
            0,
        )
        .unwrap();
        assert_eq!(fused, Interval::new(1.0, 2.0).unwrap());
    }

    #[test]
    fn prelude_exposes_the_scenario_api() {
        use crate::prelude::*;
        let scenario = Scenario::new("facade", SuiteSpec::Landshark).with_rounds(10);
        let summary = ScenarioRunner::new(&scenario).run();
        assert_eq!(summary.rounds, 10);
        assert_eq!(summary.fuser, "marzullo");
    }
}
