//! Schedule trade-offs on a custom sensor set: exact expected
//! fusion-interval widths (the paper's Table I methodology) for your own
//! interval lengths.
//!
//! Run with: `cargo run --release --example schedule_tradeoffs [-- width...]`
//! e.g. `cargo run --release --example schedule_tradeoffs -- 5 11 17`

use arsf::schedule::analysis::recommend_order;
use arsf::sim::table1::{evaluate_setup, Table1Setup};

fn main() {
    let args: Vec<f64> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let widths = if args.is_empty() {
        vec![5.0, 11.0, 17.0]
    } else {
        args
    };
    let fa = 1;
    let step = 1.0;

    let setup = Table1Setup::new(widths, fa);
    println!("{} (f = {}, grid step {step})", setup.label(), setup.f());
    println!("computing exact expectations by grid enumeration ...\n");

    let row = evaluate_setup(&setup, step);
    println!("{:<28} {:>10}", "schedule", "E|S_N,f|");
    println!("{:<28} {:>10.2}", "no attack (honest)", row.honest);
    println!(
        "{:<28} {:>10.2}   attacker chose sensors {:?}",
        "ascending (attacked)", row.ascending, row.ascending_attacked
    );
    println!(
        "{:<28} {:>10.2}   attacker chose sensors {:?}",
        "descending (attacked)", row.descending, row.descending_attacked
    );
    println!(
        "\ndescending - ascending gap: {:.2} ({}).",
        row.gap(),
        if row.gap() > 1e-9 {
            "the paper's Table I shape: Ascending protects the system"
        } else {
            "schedules tie on this configuration"
        }
    );

    // The schedule recommender (paper Section IV-C made executable):
    // untrusted sensors in ascending width order; sensors the operator
    // marks unspoofable would be pushed last.
    let trusted = vec![false; setup.widths.len()];
    let recommended = recommend_order(&setup.widths, setup.f(), &trusted);
    println!("recommended transmission order: {recommended}");
}
