//! The pluggable engine in one sweep: four fusion algorithms × three
//! detectors, every combination through the same `ScenarioRunner` entry
//! point, under a stealthy attacker on the Descending schedule.
//!
//! Run with: `cargo run --release --example scenario_sweep`

use arsf::core::scenario::{AttackerSpec, FuserSpec, Scenario, StrategySpec, SuiteSpec};
use arsf::core::{DetectionMode, ScenarioRunner};
use arsf::schedule::SchedulePolicy;

fn main() {
    let fusers = [
        FuserSpec::Marzullo,
        FuserSpec::BrooksIyengar,
        FuserSpec::Historical {
            max_rate: 3.5,
            dt: 0.1,
        },
        FuserSpec::InverseVariance,
    ];
    let detectors = [
        ("off", DetectionMode::Off),
        ("immediate", DetectionMode::Immediate),
        (
            "windowed 6/20",
            DetectionMode::Windowed {
                window: 20,
                tolerance: 6,
            },
        ),
    ];

    println!("4 fusers x 3 detectors, one engine: LandShark @ 10 mph,");
    println!("encoder 0 compromised (phantom-optimal), Descending schedule,");
    println!("2000 rounds each\n");
    println!(
        "{:<16} {:<14} {:>11} {:>11} {:>12} {:>12}",
        "fuser", "detector", "mean width", "truth lost", "flag rounds", "condemned"
    );

    for fuser in &fusers {
        for (label, detector) in &detectors {
            let scenario = Scenario::new(
                format!("sweep-{}-{label}", fuser.name()),
                SuiteSpec::Landshark,
            )
            .with_schedule(SchedulePolicy::Descending)
            .with_attacker(AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::PhantomOptimal,
            })
            .with_fuser(fuser.clone())
            .with_detector(*detector)
            .with_rounds(2000);
            let summary = ScenarioRunner::new(&scenario).run();
            println!(
                "{:<16} {:<14} {:>11.3} {:>11} {:>12} {:>12}",
                summary.fuser,
                label,
                summary.widths.mean(),
                summary.truth_lost,
                summary.flagged_rounds,
                format!("{:?}", summary.condemned),
            );
        }
    }

    println!("\nReading the table: the interval fusers (Marzullo, Brooks-");
    println!("Iyengar) never lose the truth with fa <= f; history tightens");
    println!("the attacked fusion; the probabilistic baseline loses the");
    println!("truth in a large share of rounds - the paper's core contrast.");
}
