//! The sweep subsystem in one example: a scenario grid — four fusion
//! algorithms × three detectors × two schedules, every combination a
//! lazily-materialised `Scenario` — sharded across scoped worker
//! threads, with the parallel report byte-identical to the serial run.
//!
//! Run with: `cargo run --release --example scenario_sweep`

use arsf::core::scenario::{AttackerSpec, FuserSpec, Scenario, StrategySpec, SuiteSpec};
use arsf::core::sweep::{ParallelSweeper, SweepGrid};
use arsf::core::DetectionMode;
use arsf::schedule::SchedulePolicy;

fn main() {
    let base = Scenario::new("sweep", SuiteSpec::Landshark)
        .with_attacker(AttackerSpec::Fixed {
            sensors: vec![0],
            strategy: StrategySpec::PhantomOptimal,
        })
        .with_rounds(2000);
    let grid = SweepGrid::new(base)
        .fusers([
            FuserSpec::Marzullo,
            FuserSpec::BrooksIyengar,
            FuserSpec::Historical {
                max_rate: 3.5,
                dt: 0.1,
            },
            FuserSpec::InverseVariance,
        ])
        .detectors([
            DetectionMode::Off,
            DetectionMode::Immediate,
            DetectionMode::Windowed {
                window: 20,
                tolerance: 6,
            },
        ])
        .schedules([SchedulePolicy::Ascending, SchedulePolicy::Descending]);

    let sweeper = ParallelSweeper::auto();
    println!(
        "Grid sweep: {} cells (4 fusers x 3 detectors x 2 schedules),",
        grid.len()
    );
    println!("LandShark @ 10 mph, encoder 0 compromised (phantom-optimal),");
    println!(
        "2000 rounds per cell, {} worker thread(s)\n",
        sweeper.threads()
    );

    let report = sweeper.run(&grid);

    println!(
        "{:<5} {:<16} {:<11} {:<11} {:>11} {:>11} {:>12} {:>12}",
        "cell",
        "fuser",
        "detector",
        "schedule",
        "mean width",
        "truth lost",
        "flag rounds",
        "condemned"
    );
    for row in report.rows() {
        let s = &row.summary;
        println!(
            "{:<5} {:<16} {:<11} {:<11} {:>11.3} {:>11} {:>12} {:>12}",
            row.cell,
            s.fuser,
            s.detector,
            row.schedule,
            s.widths.mean(),
            s.truth_lost,
            s.flagged_rounds,
            format!("{:?}", s.condemned),
        );
    }

    // Determinism is part of the contract: the parallel report carries
    // exactly the bytes a serial sweep would produce.
    let serial = grid.run_serial();
    assert_eq!(report, serial);
    assert_eq!(report.to_csv(), serial.to_csv());

    println!("\nReading the table: the interval fusers (Marzullo, Brooks-");
    println!("Iyengar) never lose the truth with fa <= f; history tightens");
    println!("the attacked fusion; the probabilistic baseline loses the");
    println!("truth in a large share of rounds - the paper's core contrast.");
    println!("(Parallel report verified byte-identical to the serial run.)");
}
