//! The sweep subsystem in one example: a scenario grid — four fusion
//! algorithms × three detectors × two schedules, every combination a
//! lazily-materialised `Scenario` — sharded across scoped worker
//! threads, with the parallel report byte-identical to the serial run;
//! then the same machinery driving Table II's **closed-loop** cells (a
//! LandShark inside its control loop, any sensor attackable).
//!
//! Run with: `cargo run --release --example scenario_sweep`

use arsf::core::scenario::{
    AttackerSpec, ClosedLoopSpec, FuserSpec, Scenario, StrategySpec, SuiteSpec,
};
use arsf::core::sweep::{ParallelSweeper, SweepGrid};
use arsf::core::DetectionMode;
use arsf::schedule::SchedulePolicy;

fn main() {
    let base = Scenario::new("sweep", SuiteSpec::Landshark)
        .with_attacker(AttackerSpec::Fixed {
            sensors: vec![0],
            strategy: StrategySpec::PhantomOptimal,
        })
        .with_rounds(2000);
    let grid = SweepGrid::new(base)
        .fusers([
            FuserSpec::Marzullo,
            FuserSpec::BrooksIyengar,
            FuserSpec::Historical {
                max_rate: 3.5,
                dt: 0.1,
            },
            FuserSpec::InverseVariance,
        ])
        .detectors([
            DetectionMode::Off,
            DetectionMode::Immediate,
            DetectionMode::Windowed {
                window: 20,
                tolerance: 6,
            },
        ])
        .schedules([SchedulePolicy::Ascending, SchedulePolicy::Descending]);

    let sweeper = ParallelSweeper::auto();
    println!(
        "Grid sweep: {} cells (4 fusers x 3 detectors x 2 schedules),",
        grid.len()
    );
    println!("LandShark @ 10 mph, encoder 0 compromised (phantom-optimal),");
    println!(
        "2000 rounds per cell, {} worker thread(s)\n",
        sweeper.threads()
    );

    let report = sweeper.run(&grid);

    println!(
        "{:<5} {:<16} {:<11} {:<11} {:>11} {:>11} {:>12} {:>12}",
        "cell",
        "fuser",
        "detector",
        "schedule",
        "mean width",
        "truth lost",
        "flag rounds",
        "condemned"
    );
    for row in report.rows() {
        let s = &row.summary;
        println!(
            "{:<5} {:<16} {:<11} {:<11} {:>11.3} {:>11} {:>12} {:>12}",
            row.cell,
            s.fuser,
            s.detector,
            row.schedule,
            s.widths.mean(),
            s.truth_lost,
            s.flagged_rounds,
            format!("{:?}", s.condemned),
        );
    }

    // Determinism is part of the contract: the parallel report carries
    // exactly the bytes a serial sweep would produce.
    let serial = grid.run_serial();
    assert_eq!(report, serial);
    assert_eq!(report.to_csv(), serial.to_csv());

    println!("\nReading the table: the interval fusers (Marzullo, Brooks-");
    println!("Iyengar) never lose the truth with fa <= f; history tightens");
    println!("the attacked fusion; the probabilistic baseline loses the");
    println!("truth in a large share of rounds - the paper's core contrast.");
    println!("(Parallel report verified byte-identical to the serial run.)");

    // Closed-loop cells through the same grid: Table II's three
    // schedules, one uniformly-random compromised sensor per round, the
    // vehicle's supervisor preempting on envelope escapes.
    let closed = SweepGrid::new(
        Scenario::new("table2", SuiteSpec::Landshark)
            .with_attacker(AttackerSpec::RandomEachRound)
            .with_rounds(2000)
            .with_closed_loop(ClosedLoopSpec::new(10.0)),
    )
    .schedules([
        SchedulePolicy::Ascending,
        SchedulePolicy::Descending,
        SchedulePolicy::Random,
    ]);
    println!("\nClosed-loop sweep (Table II): LandShark @ 10 mph, envelope");
    println!("[9.5, 10.5] mph, one random compromised sensor per round\n");
    println!(
        "{:<5} {:<11} {:>9} {:>9} {:>10}",
        "cell", "schedule", "above", "below", "preempts"
    );
    for row in sweeper.run(&closed).rows() {
        let sup = row.summary.supervisor.as_ref().expect("closed-loop row");
        println!(
            "{:<5} {:<11} {:>8.2}% {:>8.2}% {:>10}",
            row.cell,
            row.schedule,
            sup.above_rate * 100.0,
            sup.below_rate * 100.0,
            sup.preemptions
        );
    }
    println!("\nAscending stays violation-free; Descending is worst; Random");
    println!("sits between - Table II's ordering, now one grid away.");
}
