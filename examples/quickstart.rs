//! Quickstart: fuse redundant sensor intervals, watch an attacker stretch
//! the result, and see the detector's limits.
//!
//! Run with: `cargo run --example quickstart`

use arsf::interval::render::{Diagram, RowStyle};
use arsf::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A vehicle measures its speed (truly 10 mph) with three sensors of
    // different precision. Each reading becomes an interval wide enough
    // to be guaranteed to contain the true speed.
    let encoder = Interval::new(9.9, 10.1)?; // ±0.1 mph
    let gps = Interval::new(9.6, 10.6)?; // ±0.5 mph
    let camera = Interval::new(9.2, 11.2)?; // ±1.0 mph

    // Marzullo fusion, tolerating at most f = 1 faulty sensor: the fused
    // interval spans every point covered by >= n - f = 2 intervals.
    let honest = fuse(&[encoder, gps, camera], 1)?;
    println!("honest fusion: {honest} (width {:.2})\n", honest.width());

    // An attacker who compromised the GPS and saw the other intervals
    // first (shared bus!) forges the widest stealthy reading.
    let attack =
        arsf::attack::full_knowledge::optimal_attack(&[encoder, camera], &[gps.width()], 1)?;
    let forged = attack.placements[0];
    let attacked = fuse(&[encoder, forged, camera], 1)?;
    println!("forged GPS:    {forged}");
    println!(
        "attacked fusion: {attacked} (width {:.2}, {:.1}x wider)\n",
        attacked.width(),
        attacked.width() / honest.width()
    );

    // The overlap detector cannot flag her: the forged interval touches
    // the fusion interval by construction.
    let report = OverlapDetector.detect(&[encoder, forged, camera], &attacked);
    println!(
        "detector flags: {:?} (stealthy attack => nothing to flag)\n",
        report.flagged
    );

    // The paper's figures, in ASCII.
    let mut diagram = Diagram::new();
    diagram.row("encoder", encoder, RowStyle::Correct);
    diagram.row("gps (forged)", forged, RowStyle::Attacked);
    diagram.row("camera", camera, RowStyle::Correct);
    diagram.separator();
    diagram.row("fusion", attacked, RowStyle::Fusion);
    diagram.point("truth", 10.0);
    println!("{}", diagram.render(64));

    Ok(())
}
