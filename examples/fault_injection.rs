//! The paper's Section V extension: random faults in addition to attacks,
//! handled by the sliding-window detector of footnote 1 (a sensor may
//! fault transiently without being discarded as compromised).
//!
//! Run with: `cargo run --example fault_injection`

use arsf::prelude::*;
use arsf::sensor::{FaultKind, FaultModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // LandShark suite; the GPS occasionally glitches (20% of rounds it
    // reports 3 mph high — outside its error band).
    let mut suite = arsf::sensor::suite::landshark();
    suite.sensors_mut()[2] = suite.sensors()[2]
        .clone()
        .with_fault(FaultModel::new(FaultKind::Bias { offset: 3.0 }, 0.2));

    // Windowed detection: condemn only when > 6 violations in 20 rounds.
    let mut pipeline = FusionPipeline::builder(suite)
        .config(
            PipelineConfig::new(1, SchedulePolicy::Ascending).with_detection(
                DetectionMode::Windowed {
                    window: 20,
                    tolerance: 6,
                },
            ),
        )
        .build();

    let mut transient_flags = 0u64;
    let mut condemned_round = None;
    for round in 0..200 {
        let outcome = pipeline.run_round(10.0, &mut rng);
        if !outcome.flagged.is_empty() {
            transient_flags += 1;
        }
        if condemned_round.is_none() && outcome.condemned.contains(&2) {
            condemned_round = Some(round);
        }
        if round < 10 {
            println!(
                "round {round:>3}: fusion {:?} flagged {:?} condemned {:?}",
                outcome.fusion.as_ref().map(|s| format!("{s}")),
                outcome.flagged,
                outcome.condemned
            );
        }
    }

    println!("\nrounds with a transient flag: {transient_flags} / 200");
    match condemned_round {
        Some(r) => println!(
            "GPS condemned at round {r}: its violation rate exceeded the 6-in-20 window budget"
        ),
        None => println!("GPS survived: its fault rate stayed within the window budget"),
    }
    println!("\nThe window turns the paper's hard overlap check into a rate");
    println!("test: single glitches pass, persistent misbehaviour is caught.");
}
