//! Watch the attack happen on the wire: a CAN-like broadcast round where
//! an eavesdropping attacker forges the last-transmitting sensor's
//! interval using everything broadcast before her slot.
//!
//! Run with: `cargo run --example bus_attack_demo`

use arsf::bus::Payload;
use arsf::core::transport::run_bus_round;
use arsf::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // True speed 10 mph; correct readings for the LandShark suite.
    let readings = vec![
        Interval::new(9.93, 10.13)?, // encoder-left (compromised!)
        Interval::new(9.88, 10.08)?, // encoder-right
        Interval::new(9.7, 10.7)?,   // gps
        Interval::new(9.1, 11.1)?,   // camera
    ];
    let widths = vec![0.2, 0.2, 1.0, 2.0];

    for (name, order) in [
        (
            "ascending",
            TransmissionOrder::new(vec![0, 1, 2, 3]).unwrap(),
        ),
        (
            "descending",
            TransmissionOrder::new(vec![3, 2, 1, 0]).unwrap(),
        ),
    ] {
        println!("=== {name} schedule: order {order} ===");
        let attacker = Some((
            AttackerConfig::new([0], 1),
            Box::new(PhantomOptimal::new()) as Box<dyn AttackStrategy>,
        ));
        let round = run_bus_round(&readings, &widths, &order, 1, attacker);
        for frame in &round.frames {
            match &frame.payload {
                Payload::Measurement { sensor, interval } => {
                    let tag = if *sensor == 0 { " <- forged" } else { "" };
                    println!(
                        "  {} {} sensor {} : {}{}",
                        frame.tick, frame.id, sensor, interval, tag
                    );
                }
                Payload::Fusion { interval } => {
                    println!(
                        "  {} {} controller fusion: {} (width {:.2})",
                        frame.tick,
                        frame.id,
                        interval,
                        interval.width()
                    );
                }
                Payload::Alert { sensor } => {
                    println!("  {} {} ALERT sensor {}", frame.tick, frame.id, sensor);
                }
                _ => {}
            }
        }
        let fused = round.fusion?;
        println!(
            "  -> flagged: {:?}; truth 10.0 inside fusion: {}\n",
            round.flagged,
            fused.contains(10.0)
        );
    }

    println!("Under descending the compromised encoder transmits last and");
    println!("uses every broadcast interval; under ascending it goes first,");
    println!("blind, and is forced to send (almost) the truth.");
    Ok(())
}
