//! The case study: a three-LandShark platoon holding 10 mph while an
//! attacker compromises one (random) sensor per round — comparing the
//! Ascending, Descending and Random communication schedules.
//!
//! Run with: `cargo run --release --example landshark_platoon`

use arsf::prelude::*;
use arsf::sim::landshark::LandSharkConfig;
use arsf::sim::platoon::Platoon;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let rounds = 2_000;
    println!("three-LandShark platoon, v = 10 mph, envelope [9.5, 10.5] mph");
    println!("one random sensor compromised per round, {rounds} rounds\n");
    println!(
        "{:<12} {:>14} {:>14} {:>10} {:>12}",
        "schedule", "above 10.5", "below 9.5", "preempts", "min gap (mi)"
    );

    for policy in [
        SchedulePolicy::Ascending,
        SchedulePolicy::Descending,
        SchedulePolicy::Random,
    ] {
        let mut rng = StdRng::seed_from_u64(0xDA7E_2014);
        let config =
            LandSharkConfig::new(10.0, policy.clone()).with_attacker(AttackerSpec::RandomEachRound);
        let mut platoon = Platoon::new(3, 0.01, config);
        let mut preempts = 0u64;
        for _ in 0..rounds {
            for record in platoon.step(&mut rng) {
                if record.action != arsf::sim::supervisor::SupervisorAction::Nominal {
                    preempts += 1;
                }
            }
        }
        let (mut above, mut below, mut checked) = (0u64, 0u64, 0u64);
        for shark in platoon.sharks() {
            above += shark.supervisor().upper_violations();
            below += shark.supervisor().lower_violations();
            checked += shark.supervisor().rounds();
        }
        println!(
            "{:<12} {:>13.2}% {:>13.2}% {:>10} {:>12.4}",
            policy.name(),
            100.0 * above as f64 / checked as f64,
            100.0 * below as f64 / checked as f64,
            preempts,
            platoon.min_gap()
        );
        assert!(!platoon.collided(), "supervisor must prevent collisions");
    }

    println!("\nAscending keeps the platoon's fusion intervals inside the");
    println!("envelope: an attacker on a precise sensor is forced to commit");
    println!("before seeing anything (paper, Table II).");
}
