//! Cross-crate integration: fusion rounds over the CAN-like broadcast
//! bus, checking transport faithfulness and the attacker's
//! information model.

use arsf::bus::Payload;
use arsf::core::transport::run_bus_round;
use arsf::fusion::marzullo;
use arsf::prelude::*;

fn iv(lo: f64, hi: f64) -> Interval<f64> {
    Interval::new(lo, hi).unwrap()
}

fn landshark_readings() -> (Vec<Interval<f64>>, Vec<f64>) {
    (
        vec![
            iv(9.93, 10.13),
            iv(9.88, 10.08),
            iv(9.7, 10.7),
            iv(9.1, 11.1),
        ],
        vec![0.2, 0.2, 1.0, 2.0],
    )
}

#[test]
fn bus_round_equals_direct_fusion_for_any_order() {
    let (readings, widths) = landshark_readings();
    for order in [
        TransmissionOrder::identity(4),
        TransmissionOrder::new(vec![3, 2, 1, 0]).unwrap(),
        TransmissionOrder::new(vec![2, 0, 3, 1]).unwrap(),
    ] {
        let round = run_bus_round(&readings, &widths, &order, 1, None);
        assert_eq!(round.fusion, marzullo::fuse(&readings, 1));
        assert_eq!(round.transmitted.len(), 4);
        // Slot order on the wire matches the schedule.
        let sensors: Vec<usize> = round.transmitted.iter().map(|(s, _)| *s).collect();
        assert_eq!(sensors, order.as_slice().to_vec());
    }
}

#[test]
fn frames_carry_monotone_ticks_and_a_fusion_broadcast() {
    let (readings, widths) = landshark_readings();
    let order = TransmissionOrder::identity(4);
    let round = run_bus_round(&readings, &widths, &order, 1, None);
    for pair in round.frames.windows(2) {
        assert!(pair[0].tick < pair[1].tick, "bus time must advance");
    }
    let fusions = round
        .frames
        .iter()
        .filter(|f| matches!(f.payload, Payload::Fusion { .. }))
        .count();
    assert_eq!(fusions, 1, "the controller broadcasts its result once");
}

#[test]
fn attacker_on_bus_profits_from_later_slots() {
    let (readings, widths) = landshark_readings();
    let mut widths_by_slot_position = Vec::new();
    for order in [
        TransmissionOrder::new(vec![0, 1, 2, 3]).unwrap(), // attacked first
        TransmissionOrder::new(vec![1, 2, 0, 3]).unwrap(), // attacked third
        TransmissionOrder::new(vec![3, 2, 1, 0]).unwrap(), // attacked last
    ] {
        let attacker = Some((
            AttackerConfig::new([0], 1),
            Box::new(PhantomOptimal::new()) as Box<dyn AttackStrategy>,
        ));
        let round = run_bus_round(&readings, &widths, &order, 1, attacker);
        assert!(round.flagged.is_empty());
        widths_by_slot_position.push(round.fusion.unwrap().width());
    }
    assert!(
        widths_by_slot_position[0] <= widths_by_slot_position[2] + 1e-9,
        "an attacker transmitting first cannot beat one transmitting last: {widths_by_slot_position:?}"
    );
}

#[test]
fn multi_sensor_attacker_coordinates_across_slots() {
    // Five sensors, two compromised, f = 2: the shared-brain attacker
    // must keep both forged intervals stealthy.
    let readings = vec![
        iv(9.9, 10.1),
        iv(9.85, 10.25),
        iv(9.5, 10.5),
        iv(9.0, 11.0),
        iv(8.5, 11.5),
    ];
    let widths = vec![0.2, 0.4, 1.0, 2.0, 3.0];
    for order in [
        TransmissionOrder::new(vec![4, 3, 2, 0, 1]).unwrap(),
        TransmissionOrder::new(vec![0, 1, 2, 3, 4]).unwrap(),
        TransmissionOrder::new(vec![2, 0, 4, 1, 3]).unwrap(),
    ] {
        let attacker = Some((
            AttackerConfig::new([0, 1], 2),
            Box::new(PhantomOptimal::new()) as Box<dyn AttackStrategy>,
        ));
        let round = run_bus_round(&readings, &widths, &order, 2, attacker);
        let fused = round.fusion.unwrap();
        assert!(fused.contains(10.0), "fa <= f keeps the truth");
        assert!(
            round.flagged.is_empty(),
            "order {order}: flagged {:?}",
            round.flagged
        );
    }
}
