//! Cross-crate integration: a short Table II case-study run (the full
//! 20k-round version is the `repro_table2` release binary).

use arsf::core::scenario::AttackerSpec;
use arsf::schedule::SchedulePolicy;
use arsf::sim::landshark::{LandShark, LandSharkConfig};
use arsf::sim::platoon::Platoon;
use arsf::sim::table2::{run_schedule, Table2Config};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick() -> Table2Config {
    Table2Config {
        rounds: 1200,
        ..Table2Config::default()
    }
}

#[test]
fn table2_shape_ascending_zero_descending_worst() {
    let asc = run_schedule(SchedulePolicy::Ascending, &quick());
    let desc = run_schedule(SchedulePolicy::Descending, &quick());
    let rand = run_schedule(SchedulePolicy::Random, &quick());
    assert_eq!(asc.above, 0.0);
    assert_eq!(asc.below, 0.0);
    let total = |r: &arsf::sim::table2::Table2Row| r.above + r.below;
    assert!(total(&desc) > total(&rand));
    assert!(total(&rand) > 0.0);
}

#[test]
fn descending_rates_are_roughly_symmetric() {
    // The paper reports 17.42% above vs 17.65% below: the attacker has no
    // systematic preference for a side.
    let desc = run_schedule(
        SchedulePolicy::Descending,
        &Table2Config {
            rounds: 4000,
            ..Table2Config::default()
        },
    );
    let ratio = desc.above / desc.below;
    assert!(
        (0.5..2.0).contains(&ratio),
        "above {} vs below {} too asymmetric",
        desc.above,
        desc.below
    );
}

#[test]
fn platoon_under_attack_never_collides_with_ascending() {
    let mut rng = StdRng::seed_from_u64(1);
    let config = LandSharkConfig::new(10.0, SchedulePolicy::Ascending)
        .with_attacker(AttackerSpec::RandomEachRound);
    let mut platoon = Platoon::new(3, 0.005, config);
    for _ in 0..400 {
        platoon.step(&mut rng);
    }
    assert!(!platoon.collided());
}

#[test]
fn single_vehicle_holds_speed_under_any_schedule() {
    for policy in [
        SchedulePolicy::Ascending,
        SchedulePolicy::Descending,
        SchedulePolicy::Random,
    ] {
        let mut rng = StdRng::seed_from_u64(2);
        let config =
            LandSharkConfig::new(10.0, policy.clone()).with_attacker(AttackerSpec::RandomEachRound);
        let mut shark = LandShark::new(config);
        for _ in 0..500 {
            shark.step(&mut rng);
        }
        assert!(
            (shark.speed() - 10.0).abs() < 1.0,
            "{}: speed {} drifted",
            policy.name(),
            shark.speed()
        );
    }
}
