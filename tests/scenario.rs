//! Cross-crate integration for the pluggable-engine redesign:
//!
//! * the generic engine with `MarzulloFuser` + immediate detection
//!   reproduces the seed engine's hardwired round loop outcome-for-outcome
//!   under a fixed RNG seed,
//! * the scenario registry round-trips by name,
//! * every stock fuser and detector combination runs through the single
//!   `ScenarioRunner` entry point (the acceptance sweep).

use arsf::prelude::*;
use arsf::sensor::{FaultKind, FaultModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `(transmitted, fusion, flagged)` as the seed engine reported them.
type SeedRound = (
    Vec<(usize, Interval<f64>)>,
    Result<Interval<f64>, FusionError>,
    Vec<usize>,
);

/// The seed engine's round, re-implemented literally: sample → schedule
/// → fuse with `marzullo::fuse(_, f.min(n − 1))` → flag intervals
/// disjoint from the fusion interval. The redesigned engine must
/// reproduce it exactly when configured with its defaults.
fn seed_reference_round(
    suite: &mut SensorSuite,
    policy: &SchedulePolicy,
    f: usize,
    truth: f64,
    round: u64,
    rng: &mut StdRng,
) -> SeedRound {
    let widths = suite.widths();
    let order = policy.order(&widths, round, rng);
    let readings = suite.sample_all(truth, rng);
    let mut transmitted = Vec::new();
    for slot in 0..order.len() {
        let sensor = order[slot];
        if let Some(m) = readings.iter().find(|m| m.sensor.index() == sensor) {
            transmitted.push((sensor, m.interval));
        }
    }
    let intervals: Vec<Interval<f64>> = transmitted.iter().map(|(_, iv)| *iv).collect();
    let fusion = arsf::fusion::marzullo::fuse(&intervals, f.min(intervals.len().saturating_sub(1)));
    let mut flagged = Vec::new();
    if let Ok(fused) = &fusion {
        let report = OverlapDetector.detect(&intervals, fused);
        flagged = report.flagged.iter().map(|&i| transmitted[i].0).collect();
    }
    (transmitted, fusion, flagged)
}

#[test]
fn generic_engine_reproduces_seed_engine_round_for_round() {
    for policy in [
        SchedulePolicy::Ascending,
        SchedulePolicy::Descending,
        SchedulePolicy::Random,
    ] {
        // A suite with a transient bias fault so detection has real work.
        let make_suite = || {
            let mut suite = arsf::sensor::suite::landshark();
            suite.sensors_mut()[2] = suite.sensors()[2]
                .clone()
                .with_fault(FaultModel::new(FaultKind::Bias { offset: 30.0 }, 0.3));
            suite
        };
        let mut engine = FusionPipeline::builder(make_suite())
            .config(PipelineConfig::new(1, policy.clone()))
            .fuser(MarzulloFuser::new(1))
            .detector(Box::new(ImmediateDetector))
            .build();
        let mut reference_suite = make_suite();
        let mut rng_engine = StdRng::seed_from_u64(20140324);
        let mut rng_reference = StdRng::seed_from_u64(20140324);
        for round in 0..200 {
            let out = engine.run_round(10.0, &mut rng_engine);
            let (transmitted, fusion, flagged) = seed_reference_round(
                &mut reference_suite,
                &policy,
                1,
                10.0,
                round,
                &mut rng_reference,
            );
            assert_eq!(
                out.transmitted,
                transmitted,
                "{} round {round}",
                policy.name()
            );
            assert_eq!(out.fusion, fusion, "{} round {round}", policy.name());
            assert_eq!(out.flagged, flagged, "{} round {round}", policy.name());
            assert_eq!(
                out.estimate,
                fusion.as_ref().ok().map(|s| s.midpoint()),
                "{} round {round}",
                policy.name()
            );
        }
    }
}

#[test]
fn default_engine_equals_explicit_marzullo_immediate() {
    // The builder defaults must be *exactly* MarzulloFuser + immediate
    // detection — the seed engine's hardwired choices.
    let mut defaulted = FusionPipeline::builder(arsf::sensor::suite::landshark())
        .config(PipelineConfig::new(1, SchedulePolicy::Random))
        .build();
    let mut explicit = FusionPipeline::builder(arsf::sensor::suite::landshark())
        .config(PipelineConfig::new(1, SchedulePolicy::Random))
        .fuser(MarzulloFuser::new(1))
        .detector(Box::new(ImmediateDetector))
        .build();
    let mut rng_a = StdRng::seed_from_u64(7);
    let mut rng_b = StdRng::seed_from_u64(7);
    for _ in 0..100 {
        let a = defaulted.run_round(10.0, &mut rng_a);
        let b = explicit.run_round(10.0, &mut rng_b);
        assert_eq!(a.fusion, b.fusion);
        assert_eq!(a.transmitted, b.transmitted);
        assert_eq!(a.flagged, b.flagged);
    }
}

#[test]
fn scenario_registry_round_trips_by_name() {
    let presets = arsf::core::scenario::registry();
    assert!(presets.len() >= 8, "the registry ships meaningful presets");
    for preset in &presets {
        let found = arsf::core::scenario::find(&preset.name)
            .unwrap_or_else(|| panic!("{} must resolve", preset.name));
        assert_eq!(&found, preset);
        // Every preset materialises and runs.
        let mut shortened = found;
        shortened.rounds = 20;
        let summary = ScenarioRunner::new(&shortened).run();
        assert_eq!(summary.rounds, 20, "{}", preset.name);
    }
    assert!(arsf::core::scenario::find("definitely-not-a-preset").is_none());
}

#[test]
fn every_registry_preset_validates_builds_and_lints_clean() {
    // Registry-wide static soundness: every committed preset passes
    // `Scenario::validate`, constructs its engine (closed-loop config
    // included) via the fallible entry point, and carries no
    // error-severity `arsf-analyze` finding — the same bar the CI
    // `sweep_lint presets` gate enforces.
    for preset in arsf::core::scenario::registry() {
        assert!(
            preset.validate().is_ok(),
            "{}: {:?}",
            preset.name,
            preset.validate()
        );
        assert!(
            ScenarioRunner::try_new(&preset).is_ok(),
            "{} must construct a runner",
            preset.name
        );
        let errors: Vec<_> = arsf::analyze::analyze_scenario(&preset)
            .into_iter()
            .filter(|f| f.severity == arsf::analyze::Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{}: {errors:?}", preset.name);
    }
}

#[test]
fn scenario_runs_are_deterministic_given_the_seed() {
    let scenario = Scenario::new("determinism", SuiteSpec::Landshark)
        .with_schedule(SchedulePolicy::Random)
        .with_attacker(AttackerSpec::Fixed {
            sensors: vec![0],
            strategy: StrategySpec::PhantomOptimal,
        })
        .with_rounds(100);
    let a = ScenarioRunner::new(&scenario).run();
    let b = ScenarioRunner::new(&scenario).run();
    assert_eq!(a, b);
    let c = ScenarioRunner::new(&scenario.clone().with_seed(99)).run();
    assert_ne!(
        a.widths.mean(),
        c.widths.mean(),
        "a different seed must change the sampled stream"
    );
}

#[test]
fn acceptance_sweep_four_fusers_three_detectors_one_entry_point() {
    // The redesign's acceptance criterion: at least 4 fusers (marzullo,
    // brooks-iyengar, historical, inverse-variance) and 3 detectors
    // (off, immediate, windowed) through the same engine entry point,
    // under a live attacker.
    let fusers = [
        FuserSpec::Marzullo,
        FuserSpec::BrooksIyengar,
        FuserSpec::Historical {
            max_rate: 3.5,
            dt: 0.1,
        },
        FuserSpec::InverseVariance,
    ];
    let detectors = [
        DetectionMode::Off,
        DetectionMode::Immediate,
        DetectionMode::Windowed {
            window: 10,
            tolerance: 3,
        },
    ];
    let mut summaries = Vec::new();
    for fuser in &fusers {
        for detector in &detectors {
            let scenario = Scenario::new(format!("sweep-{}", fuser.name()), SuiteSpec::Landshark)
                .with_schedule(SchedulePolicy::Descending)
                .with_attacker(AttackerSpec::Fixed {
                    sensors: vec![0],
                    strategy: StrategySpec::PhantomOptimal,
                })
                .with_fuser(fuser.clone())
                .with_detector(*detector)
                .with_rounds(300);
            summaries.push(ScenarioRunner::new(&scenario).run());
        }
    }
    assert_eq!(summaries.len(), 12);
    for summary in &summaries {
        assert_eq!(summary.rounds, 300);
        assert_eq!(
            summary.fusion_failures, 0,
            "{} failed rounds",
            summary.fuser
        );
    }
    // The paper's guarantee holds for the interval fusers…
    for name in ["marzullo", "brooks-iyengar", "historical"] {
        for s in summaries.iter().filter(|s| s.fuser == name) {
            assert_eq!(s.truth_lost, 0, "{name} must keep the truth with fa <= f");
        }
    }
    // …and demonstrably fails for the probabilistic baseline, which is
    // the point of carrying it behind the same interface.
    let baseline_lost: u64 = summaries
        .iter()
        .filter(|s| s.fuser == "inverse-variance")
        .map(|s| s.truth_lost)
        .sum();
    assert!(
        baseline_lost > 0,
        "the weighted baseline must lose the truth under attack"
    );
}

#[test]
fn batch_runner_matches_streaming_runner() {
    let scenario = Scenario::new("batch-vs-stream", SuiteSpec::Landshark)
        .with_attacker(AttackerSpec::Fixed {
            sensors: vec![0],
            strategy: StrategySpec::GreedyHigh,
        })
        .with_rounds(64);
    let mut batch_runner = ScenarioRunner::new(&scenario);
    let mut outcomes = Vec::new();
    batch_runner.run_batch(64, &mut outcomes);

    let mut stream_runner = ScenarioRunner::new(&scenario);
    let mut out = RoundOutcome::default();
    for batch_out in &outcomes {
        stream_runner.step_into(&mut out);
        assert_eq!(out.fusion, batch_out.fusion);
        assert_eq!(out.transmitted, batch_out.transmitted);
    }
}
