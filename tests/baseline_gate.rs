//! Acceptance test for the regression-baseline harness: the two
//! committed golden baselines under `baselines/` must match a fresh run
//! of their grids cell for cell (so `sweep_diff check` passes locally
//! and in CI), and a deliberately perturbed report must fail with a
//! message naming the cell's grid index, column, baseline value and new
//! value.
//!
//! If an *intentional* fusion-algorithm change lands, re-record with
//! `cargo run --release -p arsf-bench --bin sweep_diff -- record`.

use std::path::PathBuf;

use arsf_bench::golden;
use arsf_core::sweep::diff::{diff, DiffConfig, Drift, Tolerance};
use arsf_core::sweep::store::{grid_address, Baseline};
use arsf_core::sweep::ParallelSweeper;

fn baselines_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("baselines")
}

#[test]
fn committed_baselines_match_a_fresh_run_of_every_golden_grid() {
    let sweeper = ParallelSweeper::new(2);
    for (name, grid) in golden::all() {
        let stored = Baseline::load_for_grid(baselines_dir(), &grid).unwrap_or_else(|e| {
            panic!(
                "no committed baseline for {name} (address {}): {e}; \
                 run `sweep_diff record` and commit the file",
                grid_address(&grid)
            )
        });
        let current = Baseline::from_report(&grid, &sweeper.run(&grid));
        // The check harness's configuration: near-exact, so the gate
        // holds across platforms whose libm differs in the last ulp.
        let result = diff(&stored, &current, &DiffConfig::near_exact());
        assert!(
            result.is_empty(),
            "golden grid {name} drifted from its committed baseline:\n{}",
            result.render()
        );
        assert_eq!(result.cells_compared(), grid.len());
    }
}

#[test]
fn a_perturbed_cell_fails_the_check_naming_cell_column_and_values() {
    let grid = golden::table2_closed_loop();
    let stored =
        Baseline::load_for_grid(baselines_dir(), &grid).expect("committed table2 baseline");
    let mut perturbed = stored.clone();
    // Nudge one cell's mean width beyond any sane tolerance.
    let victim = 3;
    let slot = perturbed.rows[victim]
        .metrics
        .iter_mut()
        .find(|(name, _)| name == "mean_width")
        .expect("mean_width column");
    let old = slot.1.expect("closed-loop cells fuse every round");
    let new = old + 0.25;
    slot.1 = Some(new);

    let result = diff(&stored, &perturbed, &DiffConfig::near_exact());
    assert_eq!(result.len(), 1, "{}", result.render());
    let cell = stored.rows[victim].cell;
    match &result.drifts()[0] {
        Drift::Value {
            cell: c,
            column,
            baseline,
            current,
        } => {
            assert_eq!(*c, cell);
            assert_eq!(column, "mean_width");
            assert_eq!(*baseline, Some(old));
            assert_eq!(*current, Some(new));
        }
        other => panic!("expected a value drift, got {other:?}"),
    }
    // The rendered failure names the grid index, column and both values.
    let rendered = result.render();
    for needle in [
        format!("cell {cell} `mean_width`"),
        format!("baseline {old}"),
        format!("current {new}"),
    ] {
        assert!(
            rendered.contains(&needle),
            "missing `{needle}` in:\n{rendered}"
        );
    }
    // And a tolerance wide enough to cover the nudge silences the drift.
    let lax = DiffConfig::default().with_column("mean_width", Tolerance::new(0.5, 0.0));
    assert!(diff(&stored, &perturbed, &lax).is_empty());
}

#[test]
fn committed_baseline_files_are_content_addressed_and_self_describing() {
    for (name, grid) in golden::all() {
        let address = grid_address(&grid);
        let path = baselines_dir().join(format!("{address}.json"));
        let stored = Baseline::load(&path)
            .unwrap_or_else(|e| panic!("{name}: cannot load {}: {e}", path.display()));
        assert_eq!(stored.address, address, "{name}: file stem matches address");
        assert_eq!(
            stored.rows.len(),
            grid.len(),
            "{name}: one record per grid cell"
        );
        // The stored definition is the grid's own canonical form, so the
        // baseline file re-derives its address.
        assert_eq!(
            arsf_core::sweep::store::content_address(&stored.definition),
            address,
            "{name}: definition and address agree"
        );
    }
}
