//! Cross-crate integration: the Table I shape on coarse grids (the full
//! grid is exercised by the `repro_table1` release binary; these tests
//! keep debug-build times reasonable).

use arsf::schedule::SchedulePolicy;
use arsf::sim::table1::{evaluate_schedule_fixed, evaluate_setup, most_precise_set, Table1Setup};

#[test]
fn descending_dominates_ascending_on_paper_like_setups() {
    // Scaled-down versions of the paper's setups (half-size widths,
    // coarse grid) so the exhaustive enumeration stays cheap in debug.
    let setups = [
        Table1Setup::new([3.0, 5.0, 9.0], 1),
        Table1Setup::new([3.0, 5.0, 5.0], 1),
        Table1Setup::new([2.0, 4.0, 8.0, 10.0], 1),
    ];
    for setup in &setups {
        let row = evaluate_setup(setup, 1.0);
        assert!(
            row.gap() >= -1e-9,
            "{}: ascending {} vs descending {}",
            setup.label(),
            row.ascending,
            row.descending
        );
        assert!(row.honest <= row.ascending + 1e-9);
        assert!(row.honest > 0.0);
    }
}

#[test]
fn gap_widens_with_dissimilar_interval_sizes() {
    // The paper: "expected lengths of the two schedules are similar when
    // interval sizes were comparable, while they tend to get further
    // apart when there are large differences in sizes."
    let similar = Table1Setup::new([4.0, 5.0, 6.0], 1);
    let dissimilar = Table1Setup::new([2.0, 5.0, 12.0], 1);
    let row_similar = evaluate_setup(&similar, 1.0);
    let row_dissimilar = evaluate_setup(&dissimilar, 1.0);
    assert!(
        row_dissimilar.gap() > row_similar.gap(),
        "dissimilar gap {} must exceed similar gap {}",
        row_dissimilar.gap(),
        row_similar.gap()
    );
}

#[test]
fn precise_attacked_set_is_blind_under_ascending() {
    // With the most precise sensor compromised and fa = 1, Ascending
    // forces a passive, zero-slack (truthful) transmission: the attacked
    // expectation equals the honest one.
    let setup = Table1Setup::new([3.0, 5.0, 9.0], 1);
    let row = evaluate_setup(&setup, 1.0);
    let precise = most_precise_set(&setup);
    let asc_fixed = evaluate_schedule_fixed(&setup, &SchedulePolicy::Ascending, &precise, 1.0);
    assert!(
        (asc_fixed - row.honest).abs() < 1e-9,
        "blind precise attacker must match honest: {asc_fixed} vs {}",
        row.honest
    );
    // While Descending hands the same attacker full knowledge.
    let desc_fixed = evaluate_schedule_fixed(&setup, &SchedulePolicy::Descending, &precise, 1.0);
    assert!(desc_fixed > asc_fixed);
}
