//! Cross-crate integration: the full fusion pipeline (sensors → schedule
//! → attacker → fusion → detection) through the facade crate's public
//! API.

use arsf::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng() -> StdRng {
    StdRng::seed_from_u64(424242)
}

#[test]
fn honest_pipeline_tracks_truth_across_schedules() {
    for policy in [
        SchedulePolicy::Ascending,
        SchedulePolicy::Descending,
        SchedulePolicy::Random,
    ] {
        let mut rng = rng();
        let mut pipeline = FusionPipeline::builder(arsf::sensor::suite::landshark())
            .config(PipelineConfig::new(1, policy))
            .build();
        for round in 0..100 {
            let truth = 10.0 + (round as f64 * 0.01);
            let out = pipeline.run_round(truth, &mut rng);
            let fused = out.fusion.expect("all-correct round fuses");
            assert!(fused.contains(truth), "round {round}: {fused} lost {truth}");
            assert!(out.flagged.is_empty());
            let estimate = out.estimate.expect("estimate exists");
            assert!((estimate - truth).abs() <= fused.width() / 2.0 + 1e-12);
        }
    }
}

#[test]
fn stealthy_attacker_never_detected_and_truth_never_lost() {
    for policy in [
        SchedulePolicy::Ascending,
        SchedulePolicy::Descending,
        SchedulePolicy::Random,
    ] {
        for attacked in 0..4 {
            let mut rng = rng();
            let mut pipeline = FusionPipeline::builder(arsf::sensor::suite::landshark())
                .config(PipelineConfig::new(1, policy.clone()))
                .attacker(
                    AttackerConfig::new([attacked], 1),
                    Box::new(PhantomOptimal::new()),
                )
                .build();
            for _ in 0..60 {
                let out = pipeline.run_round(10.0, &mut rng);
                let fused = out.fusion.expect("fa <= f always fuses");
                // The paper's core guarantee: with fa <= f the fusion
                // interval still contains the true value.
                assert!(fused.contains(10.0));
                // And the stealthy attacker is never flagged.
                assert!(
                    out.flagged.is_empty(),
                    "{} attacking {attacked}: flagged {:?}",
                    policy.name(),
                    out.flagged
                );
            }
        }
    }
}

#[test]
fn attack_widens_fusion_relative_to_truthful_baseline() {
    let mut rng_a = rng();
    let mut rng_b = rng();
    let mut truthful = FusionPipeline::builder(arsf::sensor::suite::landshark())
        .config(PipelineConfig::new(1, SchedulePolicy::Descending))
        .attacker(AttackerConfig::new([0], 1), Box::new(Truthful))
        .build();
    let mut attacked = FusionPipeline::builder(arsf::sensor::suite::landshark())
        .config(PipelineConfig::new(1, SchedulePolicy::Descending))
        .attacker(AttackerConfig::new([0], 1), Box::new(PhantomOptimal::new()))
        .build();
    let rounds = 200;
    let mut truthful_sum = 0.0;
    let mut attacked_sum = 0.0;
    for _ in 0..rounds {
        truthful_sum += truthful.run_round(10.0, &mut rng_a).width().unwrap();
        attacked_sum += attacked.run_round(10.0, &mut rng_b).width().unwrap();
    }
    assert!(
        attacked_sum > truthful_sum * 1.2,
        "attack must widen fusion: {attacked_sum} vs {truthful_sum}"
    );
}

#[test]
fn schedule_defence_ordering_holds_in_expectation() {
    // Ascending <= Random <= Descending in mean width under an attacker
    // on the most precise sensor.
    let mut widths = Vec::new();
    for policy in [
        SchedulePolicy::Ascending,
        SchedulePolicy::Random,
        SchedulePolicy::Descending,
    ] {
        let mut rng = rng();
        let mut pipeline = FusionPipeline::builder(arsf::sensor::suite::landshark())
            .config(PipelineConfig::new(1, policy))
            .attacker(AttackerConfig::new([0], 1), Box::new(PhantomOptimal::new()))
            .build();
        let mut total = 0.0;
        let rounds = 400;
        for _ in 0..rounds {
            total += pipeline.run_round(10.0, &mut rng).width().unwrap();
        }
        widths.push(total / rounds as f64);
    }
    assert!(
        widths[0] <= widths[1] + 0.02 && widths[1] <= widths[2] + 0.02,
        "expected ascending <= random <= descending, got {widths:?}"
    );
}

#[test]
fn detection_flags_unstealthy_faults_but_never_correct_sensors() {
    use arsf::sensor::{FaultKind, FaultModel};
    let mut rng = rng();
    let mut suite = arsf::sensor::suite::landshark();
    suite.sensors_mut()[2] = suite.sensors()[2]
        .clone()
        .with_fault(FaultModel::new(FaultKind::StuckAt { value: 42.0 }, 1.0));
    let mut pipeline = FusionPipeline::builder(suite)
        .config(PipelineConfig::new(1, SchedulePolicy::Ascending))
        .build();
    for _ in 0..30 {
        let out = pipeline.run_round(10.0, &mut rng);
        assert_eq!(out.flagged, vec![2], "only the stuck sensor is flagged");
    }
}
