//! Workspace-level acceptance test for the sweep subsystem: a ≥48-cell
//! grid swept in parallel must produce a report byte-identical to the
//! serial run — same rows, same order, same numbers — and every cell
//! must be reproducible in isolation.

use arsf::core::scenario::{AttackerSpec, FuserSpec, Scenario, StrategySpec, SuiteSpec};
use arsf::core::sweep::{ParallelSweeper, SweepGrid};
use arsf::core::{DetectionMode, ScenarioRunner};
use arsf::schedule::SchedulePolicy;

/// 4 fusers × 3 detectors × 2 schedules × 2 seeds = 48 cells.
fn acceptance_grid() -> SweepGrid {
    let base = Scenario::new("acceptance", SuiteSpec::Landshark)
        .with_attacker(AttackerSpec::Fixed {
            sensors: vec![0],
            strategy: StrategySpec::PhantomOptimal,
        })
        .with_rounds(60);
    SweepGrid::new(base)
        .fusers([
            FuserSpec::Marzullo,
            FuserSpec::BrooksIyengar,
            FuserSpec::InverseVariance,
            FuserSpec::Historical {
                max_rate: 3.5,
                dt: 0.1,
            },
        ])
        .detectors([
            DetectionMode::Off,
            DetectionMode::Immediate,
            DetectionMode::Windowed {
                window: 10,
                tolerance: 3,
            },
        ])
        .schedules([SchedulePolicy::Ascending, SchedulePolicy::Descending])
        .seeds([2014, 7])
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let grid = acceptance_grid();
    assert!(grid.len() >= 48, "acceptance wants a >=48-cell grid");
    let serial = grid.run_serial();
    assert_eq!(serial.len(), grid.len());
    for threads in [2, 4, 8] {
        let parallel = ParallelSweeper::new(threads).run(&grid);
        assert_eq!(serial, parallel, "{threads}-thread report diverged");
        assert_eq!(
            serial.to_csv(),
            parallel.to_csv(),
            "{threads}-thread CSV bytes diverged"
        );
        assert_eq!(
            serial.to_json(),
            parallel.to_json(),
            "{threads}-thread JSON bytes diverged"
        );
    }
    // Rows are in grid order: cell column is 0..n.
    for (i, row) in serial.rows().iter().enumerate() {
        assert_eq!(row.cell, i);
    }
}

#[test]
fn any_cell_reruns_identically_in_isolation() {
    let grid = acceptance_grid();
    let report = ParallelSweeper::new(4).run(&grid);
    for index in [0, 13, 29, 47] {
        let solo = ScenarioRunner::new(&grid.scenario(index)).run();
        assert_eq!(
            report.rows()[index].summary,
            solo,
            "cell {index} not reproducible in isolation"
        );
    }
}

#[test]
fn random_schedule_cells_stay_deterministic_across_thread_counts() {
    // The Random schedule consumes the per-cell RNG: determinism must
    // come from the derived seed, not from execution order.
    let grid = SweepGrid::new(
        Scenario::new("rand", SuiteSpec::Landshark)
            .with_schedule(SchedulePolicy::Random)
            .with_rounds(40),
    )
    .fusers([FuserSpec::Marzullo, FuserSpec::Hull])
    .seeds([1, 2, 3]);
    let a = ParallelSweeper::new(2).run(&grid);
    let b = ParallelSweeper::new(5).run(&grid);
    assert_eq!(a, b);
    assert_eq!(a.to_csv(), grid.run_serial().to_csv());
}
