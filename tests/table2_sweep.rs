//! Workspace acceptance test for the closed-loop sweep redesign:
//! `arsf_sim::table2` results are reproduced *through the scenario
//! grid* — Table II's schedule ordering holds (ascending violation-free,
//! random strictly between, descending worst), and the parallel report
//! is byte-identical to the serial one, supervisor columns included.

use arsf::core::sweep::ParallelSweeper;
use arsf::schedule::SchedulePolicy;
use arsf::sim::table2::{run_all, sweep_grid, Table2Config, Table2Row};

fn quick() -> Table2Config {
    Table2Config {
        rounds: 1200,
        replicates: 2,
        threads: 1,
        ..Table2Config::default()
    }
}

#[test]
fn table2_through_the_grid_reproduces_the_paper_ordering() {
    let rows = run_all(&quick());
    let by_name = |name: &str| -> &Table2Row {
        rows.iter()
            .find(|r| r.schedule == name)
            .expect("schedule present")
    };
    let asc = by_name("ascending");
    let desc = by_name("descending");
    let random = by_name("random");

    assert_eq!(asc.above, 0.0, "paper: 0% above under Ascending");
    assert_eq!(asc.below, 0.0, "paper: 0% below under Ascending");
    assert!(
        desc.above > 0.02 && desc.below > 0.02,
        "descending must violate substantially on both sides: {desc:?}"
    );
    let total = |r: &Table2Row| r.above + r.below;
    assert!(
        total(asc) < total(random) && total(random) < total(desc),
        "random must sit strictly between: asc {} rand {} desc {}",
        total(asc),
        total(random),
        total(desc)
    );
}

#[test]
fn table2_grid_is_byte_identical_serial_vs_parallel() {
    let grid = sweep_grid(&quick());
    assert_eq!(grid.len(), 6, "3 schedules x 2 replicates");
    let serial = grid.run_serial();
    let parallel = ParallelSweeper::new(4).run(&grid);
    assert_eq!(serial, parallel, "4-worker report diverged");
    let csv = serial.to_csv();
    assert_eq!(csv, parallel.to_csv(), "CSV bytes diverged");
    assert_eq!(serial.to_json(), parallel.to_json(), "JSON bytes diverged");

    // The supervisor columns are populated on every closed-loop row and
    // survive emission: an ascending row renders 0 rates, a descending
    // one renders strictly positive ones.
    for row in serial.rows() {
        let sup = row
            .summary
            .supervisor
            .as_ref()
            .expect("closed-loop rows carry supervisor stats");
        assert!(sup.min_gap.is_none(), "single vehicle has no gap");
        match row.schedule.as_str() {
            "ascending" => assert_eq!((sup.above_rate, sup.below_rate), (0.0, 0.0)),
            "descending" => assert!(sup.above_rate > 0.0 && sup.below_rate > 0.0),
            _ => {}
        }
    }
    let header = csv.lines().next().expect("header line");
    for column in [
        "faults",
        "above_rate",
        "below_rate",
        "preemptions",
        "min_gap",
        "vehicle_mean_widths",
        "vehicle_max_widths",
        "vehicle_truth_lost",
    ] {
        assert!(header.contains(column), "CSV header misses {column}");
    }
    assert!(
        serial.to_json().contains("\"above_rate\":0,"),
        "ascending rows emit their zero rate"
    );
}

#[test]
fn table2_cells_rerun_identically_in_isolation() {
    let config = quick();
    let grid = sweep_grid(&config);
    let report = ParallelSweeper::new(2).run(&grid);
    for index in [0, 3, 5] {
        let solo = arsf::core::ScenarioRunner::new(&grid.scenario(index)).run();
        assert_eq!(
            report.rows()[index].summary,
            solo,
            "cell {index} not reproducible in isolation"
        );
    }
}

#[test]
fn closed_loop_platoon_cells_report_gap_statistics() {
    use arsf::core::scenario::{self, Scenario};
    let preset: Scenario = scenario::find("platoon-historical").expect("preset registered");
    let mut preset = preset;
    preset.rounds = 300;
    preset.schedule = SchedulePolicy::Ascending;
    let summary = arsf::core::ScenarioRunner::new(&preset).run();
    let sup = summary.supervisor.expect("closed-loop summary");
    let gap = sup.min_gap.expect("platoon reports its minimum gap");
    assert!(gap > 0.0, "ascending platoon must not collide");
    assert_eq!(
        (sup.above_rate, sup.below_rate),
        (0.0, 0.0),
        "ascending neutralises single random attackers"
    );
    // Every vehicle — not just the leader — carries fusion statistics.
    assert_eq!(summary.vehicles.len(), 3, "one aggregate per vehicle");
    for (i, vehicle) in summary.vehicles.iter().enumerate() {
        assert_eq!(
            vehicle.widths.count() + vehicle.fusion_failures,
            300,
            "vehicle {i} must account for every control period"
        );
    }
    assert_eq!(
        summary.vehicles[0].widths, summary.widths,
        "the leader's aggregate is the summary's headline stats"
    );
}

#[test]
fn previously_panicking_closed_loop_combos_run_through_the_grid() {
    // Regression (ISSUE 4): fault injection and non-phantom strategies
    // used to panic in `Scenario::landshark_config`; a faulted, greedily
    // attacked, Brooks–Iyengar-fused platoon now sweeps like any other
    // cell — and stays byte-identical across thread counts.
    use arsf::core::scenario::{AttackerSpec, ClosedLoopSpec, FuserSpec, Scenario, StrategySpec};
    use arsf::core::sweep::SweepGrid;
    use arsf::prelude::SuiteSpec;
    use arsf::sensor::{FaultKind, FaultModel};

    let base = Scenario::new("issue4", SuiteSpec::Landshark)
        .with_fault(2, FaultModel::new(FaultKind::Bias { offset: 3.0 }, 0.25))
        .with_rounds(150)
        .with_closed_loop(ClosedLoopSpec::new(10.0).with_platoon(2, 0.01));
    let grid = SweepGrid::new(base)
        .attackers([
            AttackerSpec::Fixed {
                sensors: vec![0],
                strategy: StrategySpec::GreedyHigh,
            },
            AttackerSpec::Fixed {
                sensors: vec![1],
                strategy: StrategySpec::Truthful,
            },
            AttackerSpec::RandomEachRound,
        ])
        .fusers([FuserSpec::Marzullo, FuserSpec::BrooksIyengar])
        .schedules([SchedulePolicy::Ascending, SchedulePolicy::Descending]);
    assert_eq!(grid.len(), 12);
    for cell in grid.cells() {
        cell.scenario.validate().expect("supported combination");
    }
    let serial = grid.run_serial();
    let threaded = ParallelSweeper::new(4).run(&grid);
    assert_eq!(serial, threaded, "4-worker report diverged");
    assert_eq!(serial.to_csv(), threaded.to_csv(), "CSV bytes diverged");
    assert_eq!(serial.to_json(), threaded.to_json(), "JSON bytes diverged");
    for row in serial.rows() {
        assert_eq!(row.summary.rounds, 150);
        assert_eq!(row.summary.vehicles.len(), 2, "per-vehicle columns");
        assert!(row.faults.contains("2:bias(3)@0.25"), "fault axis label");
    }
}
