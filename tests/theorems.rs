//! Cross-crate integration: the paper's theorems exercised through the
//! public API on top of the full stack.

use arsf::attack::full_knowledge::optimal_attack;
use arsf::attack::worst_case::{attacked_worst_case, global_worst_case, no_attack_worst_case};
use arsf::fusion::bounds::{check_bounds, theorem2_bound};
use arsf::fusion::marzullo::{fuse, is_bounded_assumption, max_bounded_f};
use arsf::prelude::*;

fn iv(lo: f64, hi: f64) -> Interval<f64> {
    Interval::new(lo, hi).unwrap()
}

#[test]
fn marzullo_boundedness_conditions() {
    // f < ceil(n/3): bounded by a correct width; f < ceil(n/2): by some
    // width; beyond: unbounded (paper Section II-A).
    assert!(is_bounded_assumption(5, 2));
    assert!(!is_bounded_assumption(5, 3));
    assert_eq!(max_bounded_f(4), 1);

    // An unbounded-regime example: f = 2 of n = 3 lets two colluding
    // intervals drag the fusion arbitrarily far from the truth.
    let far = [iv(9.0, 11.0), iv(500.0, 501.0), iv(500.5, 501.5)];
    let fused = fuse(&far, 2).unwrap();
    assert!(fused.width() > 400.0);
    assert!(fused.contains(10.0)); // hull still includes it here,
                                   // but no guarantee exists
}

#[test]
fn theorem2_bound_is_tight_and_respected() {
    // Tightness: two correct intervals touching exactly at the truth.
    let correct = [iv(-5.0, 0.0), iv(0.0, 7.0)];
    let attack = optimal_attack(&correct, &[12.0], 1).unwrap();
    let bound = theorem2_bound(&correct).unwrap();
    assert_eq!(attack.width(), bound, "the bound is achieved");

    // Respected on an arbitrary attacked configuration.
    let all = [iv(-1.0, 1.0), iv(-0.5, 1.5), attack.placements[0]];
    let report = check_bounds(&all, &[0, 1], 1).unwrap();
    assert!(report.holds);
}

#[test]
fn theorem3_attacking_largest_changes_nothing() {
    let widths = [1.0, 3.0, 5.0];
    let na = no_attack_worst_case(&widths, 1, 0.5).unwrap();
    let largest = attacked_worst_case(&widths, &[2], 1, 0.5).unwrap();
    assert!((na.width - largest.width).abs() < 1e-9);
}

#[test]
fn theorem4_attacking_smallest_is_globally_worst() {
    let widths = [1.0, 3.0, 5.0];
    let (_, global) = global_worst_case(&widths, 1, 1, 0.5).unwrap();
    let smallest = attacked_worst_case(&widths, &[0], 1, 0.5).unwrap();
    assert!((global.width - smallest.width).abs() < 1e-9);
    // And it strictly exceeds the no-attack worst case on this geometry.
    let na = no_attack_worst_case(&widths, 1, 0.5).unwrap();
    assert!(smallest.width > na.width);
}

#[test]
fn fig2_no_optimal_policy_under_partial_information() {
    let demo = arsf::attack::regret::fig2_demo();
    assert!(demo.one_sided.1.regret() > 0.0);
    assert!(demo.two_sided.1.regret() > 0.0);
}

#[test]
fn detector_soundness_no_false_positives_when_fa_at_most_f() {
    // A correct interval always intersects the fusion interval, so the
    // overlap detector can never flag a correct sensor (the asymmetry the
    // stealthy attacker exploits).
    let correct = [iv(9.0, 11.0), iv(9.5, 10.5), iv(8.0, 12.0)];
    let attack = optimal_attack(&correct, &[2.0], 1).unwrap();
    let mut all = correct.to_vec();
    all.push(attack.placements[0]);
    let fused = fuse(&all, 1).unwrap();
    let report = OverlapDetector.detect(&all, &fused);
    assert!(report.all_clear());
}
